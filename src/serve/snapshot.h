#ifndef LAMO_SERVE_SNAPSHOT_H_
#define LAMO_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/labeled_motif.h"
#include "graph/graph.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/weights.h"
#include "util/status.h"

namespace lamo {

/// ---- Model snapshot (`.lamosnap`) ----------------------------------------
///
/// The serving subsystem's binary artifact: everything `lamo predict` would
/// re-derive from the text inputs (OBO ontology with its ancestor closures,
/// GAF annotations, Lord term weights, informative/border functional-class
/// flags, labeled motifs with strengths, a per-protein motif-site index and
/// the top-category prediction context) compiled once by `lamo pack` and
/// loaded back with one sequential read — no text parsing, no closure or
/// weight recomputation on the serve path.
///
/// The on-disk layout (field by field) is documented in docs/FORMATS.md
/// ("Model snapshot"). The file is versioned and checksummed; the reader
/// rejects truncated files, wrong magic, unsupported versions and checksum
/// mismatches with a Status error and never crashes on corrupt input.

/// File magic, first 8 bytes of every snapshot.
inline constexpr char kSnapshotMagic[8] = {'L', 'A', 'M', 'O',
                                           'S', 'N', 'A', 'P'};

/// Current format version. Readers accept exactly this version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// One motif site a protein appears at: `motifs[motif]`'s canonical vertex
/// `vertex`. Mirrors LabeledMotifPredictor's per-protein index.
struct SnapshotSite {
  uint32_t motif = 0;
  uint32_t vertex = 0;

  friend bool operator==(const SnapshotSite& a, const SnapshotSite& b) {
    return a.motif == b.motif && a.vertex == b.vertex;
  }
};

/// The in-memory image of a snapshot.
struct Snapshot {
  Graph graph;
  Ontology ontology;
  AnnotationTable annotations;
  TermWeights weights;
  InformativeClasses informative;
  std::vector<LabeledMotif> motifs;

  /// Per-protein motif-occurrence index: sites[p] lists the (motif, vertex)
  /// pairs protein p plays, deduplicated, in first-seen order (identical to
  /// the index LabeledMotifPredictor builds).
  std::vector<std::vector<SnapshotSite>> sites;

  /// Prediction context, materialized at pack time: the top categories
  /// (children of the first ontology root) and each protein's known
  /// categories generalized via the true path — exactly what `lamo predict`
  /// derives before answering.
  std::vector<TermId> categories;
  std::vector<std::vector<TermId>> protein_categories;
};

/// Derives the packed artifacts (weights, informative classes, site index,
/// prediction context) from pipeline outputs. Deterministic: depends only on
/// the inputs, never on thread count.
Snapshot BuildSnapshot(Graph graph, Ontology ontology,
                       AnnotationTable annotations,
                       std::vector<LabeledMotif> motifs,
                       const InformativeConfig& informative_config);

/// Serializes `snapshot` to its canonical byte string (magic, version,
/// sections, trailing FNV-1a checksum). Byte-reproducible for equal inputs.
std::string EncodeSnapshot(const Snapshot& snapshot);

/// Parses a byte string produced by EncodeSnapshot. Corrupt input (short
/// file, bad magic, unsupported version, checksum mismatch, malformed or
/// out-of-range section data) yields a descriptive error Status.
StatusOr<Snapshot> DecodeSnapshot(const std::string& bytes);

/// Writes EncodeSnapshot(snapshot) to `path`.
Status WriteSnapshot(const Snapshot& snapshot, const std::string& path);

/// Reads and decodes `path`.
StatusOr<Snapshot> ReadSnapshot(const std::string& path);

}  // namespace lamo

#endif  // LAMO_SERVE_SNAPSHOT_H_
