#ifndef LAMO_SERVE_JOURNAL_H_
#define LAMO_SERVE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace lamo {

/// One edge mutation, the unit both the delta journal and the
/// `--watch-deltas` file speak in.
struct DeltaEntry {
  bool add = true;  // true = ADDEDGE, false = DELEDGE
  VertexId u = 0;
  VertexId v = 0;
};

/// Parses one delta line — exactly the admin wire grammar, `ADDEDGE u v` or
/// `DELEDGE u v` — so journals and watched delta files can be replayed by
/// feeding each line through the same code path the TCP verbs use.
StatusOr<DeltaEntry> ParseDeltaLine(const std::string& line);

/// True for lines replay must skip without error: blank lines, `#` comments
/// and the `LAMOJOURNAL` header.
bool IsDeltaComment(const std::string& line);

/// ---- Write-ahead delta journal --------------------------------------------
///
/// Crash safety for live updates without ever rewriting the snapshot file:
/// the `.lamosnap` on disk stays the immutable base image, and the journal
/// is an append-only text file of applied mutations. Every update is
/// journaled (append + flush + fsync) BEFORE it is applied in memory, so at
/// any kill point the disk holds one of two consistent states:
///
///   * entry absent  — the update was never acknowledged; replay reproduces
///     the pre-update state;
///   * entry present — replay reproduces the post-update state, whether or
///     not the crashed process got to apply it.
///
/// The header line, `LAMOJOURNAL 1 <checksum>`, binds the journal to the
/// base snapshot by its FNV-1a checksum: attaching a journal written against
/// a different snapshot is a Corruption error, not a silent wrong replay. A
/// torn trailing line (no '\n' — the crash hit mid-append) is ignored, which
/// is exactly the "entry absent" case: an unacknowledged update.
class UpdateJournal {
 public:
  /// Opens (or creates) the journal at `path` for the snapshot identified by
  /// `snapshot_checksum`. Pre-existing complete entries are parsed into
  /// `*replay` for the caller to re-apply. The file is left open for
  /// appending.
  static StatusOr<UpdateJournal> Open(const std::string& path,
                                      uint64_t snapshot_checksum,
                                      std::vector<DeltaEntry>* replay);

  UpdateJournal(UpdateJournal&& other) noexcept;
  UpdateJournal& operator=(UpdateJournal&& other) noexcept;
  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;
  ~UpdateJournal();

  /// Durably appends one entry: write, flush, fsync, in that order, with the
  /// `update.journal` fault point armed before any byte reaches the file.
  Status Append(const DeltaEntry& entry);

  const std::string& path() const { return path_; }
  /// Entries appended or replayed through this handle (monotonic).
  size_t entries() const { return entries_; }

 private:
  UpdateJournal(std::string path, FILE* file, size_t entries)
      : path_(std::move(path)), file_(file), entries_(entries) {}

  std::string path_;
  FILE* file_ = nullptr;
  size_t entries_ = 0;
};

}  // namespace lamo

#endif  // LAMO_SERVE_JOURNAL_H_
