#ifndef LAMO_SERVE_REQUEST_H_
#define LAMO_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ontology/annotation.h"
#include "predict/predictor.h"
#include "util/status.h"

namespace lamo {

/// ---- Serve wire protocol ---------------------------------------------------
///
/// Line-oriented, UTF-8, one request per line (grammar in docs/FORMATS.md,
/// "Serve wire protocol"):
///
///   PREDICT <protein> [k]   scored top-k categories for a protein
///   MOTIFS <protein>        labeled-motif sites the protein appears at
///   TERMINFO <term-name>    packed per-term facts (weight, FC flags, depth)
///   HEALTH                  snapshot identity + readiness (one line)
///   STATS                   server counters (requests, cache, connections)
///   METRICS                 Prometheus text exposition of the obs registry
///   ADDEDGE <u> <v>         admin: add interaction {u, v} to the live graph
///   DELEDGE <u> <v>         admin: remove interaction {u, v}
///   PREDICT_EDGE <u> <v>    score candidate interaction {u, v} by motif
///                           completion (edge must be absent)
///
/// Any request line may carry an optional leading request-ID token
/// `#<u64>` (e.g. `#17 PREDICT 42 3`): the router stamps one per request
/// and forwards it so backend access logs can be joined with the router's.
/// The ID never changes the response bytes and is excluded from cache keys.
///
/// Responses are either `OK <n>` followed by exactly n payload lines, or a
/// single `ERR <Code> <message>` line. PREDICT payload lines are
/// byte-identical to offline `lamo predict` stdout for the same snapshot.

/// Default k for PREDICT when the client omits it (matches the CLI's
/// --top-k default).
inline constexpr size_t kDefaultPredictTopK = 3;

enum class RequestType : uint8_t {
  kPredict,
  kMotifs,
  kTermInfo,
  kHealth,
  kStats,
  kMetrics,
  kAddEdge,
  kDelEdge,
  kPredictEdge,
};

/// One parsed request line.
struct Request {
  RequestType type = RequestType::kHealth;
  ProteinId protein = 0;          // PREDICT / MOTIFS / edge verbs (u)
  ProteinId protein2 = 0;         // ADDEDGE / DELEDGE / PREDICT_EDGE (v)
  size_t top_k = kDefaultPredictTopK;  // PREDICT
  std::string term;               // TERMINFO
  uint64_t id = 0;                // `#<u64>` request-ID token (0 = none)
};

/// Parses one request line (leading/trailing whitespace ignored). Unknown
/// verbs, missing or malformed arguments yield InvalidArgument.
StatusOr<Request> ParseRequest(const std::string& line);

/// True for the pure queries whose responses may be memoized (PREDICT,
/// MOTIFS, TERMINFO); HEALTH and STATS describe live server state.
bool IsCacheable(RequestType type);

/// Renders `key` for the response cache: the canonical form of a request
/// (normalized whitespace, explicit defaults) so equivalent spellings share
/// one cache entry.
std::string CacheKey(const Request& request);

/// `OK <n>\n` + payload lines, each '\n'-terminated.
std::string FormatOkResponse(const std::vector<std::string>& payload);

/// `ERR <Code> <message>\n` (message newlines replaced with spaces).
std::string FormatErrorResponse(const Status& status);

/// The offline `lamo predict` stdout for one protein, as lines without
/// trailing newlines: either the "no prediction" line (backends whose
/// Covers() declines the protein — only lms does) or the header plus one
/// rank line per top-k prediction. Works for any registered backend and is
/// shared by the CLI and the PREDICT handler, so the offline and serving
/// paths cannot drift apart — the byte-identity contract rests here.
std::vector<std::string> PredictionOutputLines(const PredictionContext& context,
                                               const Ontology& ontology,
                                               const FunctionPredictor& predictor,
                                               ProteinId protein, size_t top_k);

}  // namespace lamo

#endif  // LAMO_SERVE_REQUEST_H_
