#ifndef LAMO_SERVE_SERVER_H_
#define LAMO_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "predict/labeled_motif_predictor.h"
#include "serve/cache.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace lamo {

/// Default response-cache capacity (entries) for `lamo serve`.
inline constexpr size_t kDefaultServeCacheCapacity = 4096;

/// Live server counters, exposed by the STATS request. Kept separately from
/// the obs layer so STATS works without a `--report` sink installed; the
/// handlers additionally feed the `serve.*` obs counters and histograms when
/// a sink is present.
struct ServeStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> connections{0};
};

/// Answers protocol requests against one loaded snapshot. Construction wires
/// the prediction context and the labeled-motif predictor from the packed
/// artifacts — no text parsing, no weight or closure recomputation. Handle()
/// is thread-safe: the snapshot is immutable, the cache is internally
/// locked, and the stats are atomics.
class SnapshotService {
 public:
  /// Takes ownership of the snapshot. `cache_capacity` 0 disables response
  /// memoization (every request recomputes; responses are unchanged).
  explicit SnapshotService(Snapshot snapshot,
                           size_t cache_capacity = kDefaultServeCacheCapacity);

  SnapshotService(const SnapshotService&) = delete;
  SnapshotService& operator=(const SnapshotService&) = delete;

  /// Processes one request line and returns the full wire response
  /// (`OK <n>` + payload, or `ERR ...`), updating stats, the cache, and the
  /// serve.* observability metrics.
  std::string Handle(const std::string& line);

  const Snapshot& snapshot() const { return snapshot_; }
  ServeStats& stats() { return stats_; }
  const ServeStats& stats() const { return stats_; }
  size_t cache_entries() const { return cache_.size(); }

 private:
  StatusOr<std::vector<std::string>> Payload(const Request& request);
  StatusOr<std::vector<std::string>> Predict(const Request& request);
  StatusOr<std::vector<std::string>> Motifs(const Request& request);
  StatusOr<std::vector<std::string>> TermInfo(const Request& request);
  std::vector<std::string> Health() const;
  std::vector<std::string> Stats() const;

  Snapshot snapshot_;
  PredictionContext context_;
  std::unique_ptr<LabeledMotifPredictor> predictor_;
  ResponseCache cache_;
  ServeStats stats_;
};

/// One-shot stream mode (`lamo serve --stdin`): reads request lines from
/// `in` until EOF, writes each response to `out`. Requests are dispatched
/// onto the parallel runtime's thread pool exactly as in TCP mode, and
/// responses keep request order, so output is deterministic for any thread
/// count. Used by tests and the determinism guard.
Status RunStreamServer(SnapshotService* service, std::istream& in,
                       std::ostream& out);

/// Long-lived TCP mode: binds 127.0.0.1:`port` (0 picks an ephemeral port),
/// prints `listening on 127.0.0.1:<port>` to `log`, and serves concurrent
/// connections — one reader thread per connection, each request dispatched
/// onto the shared thread pool — until SIGINT or SIGTERM. Shutdown is
/// graceful: stop accepting, unblock readers, finish in-flight requests,
/// join everything, then return OK so the CLI can flush --report/--trace.
Status RunTcpServer(SnapshotService* service, uint16_t port, std::FILE* log);

}  // namespace lamo

#endif  // LAMO_SERVE_SERVER_H_
