#ifndef LAMO_SERVE_SERVER_H_
#define LAMO_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <string>

#include "obs/window.h"
#include "predict/predictor.h"
#include "serve/access_log.h"
#include "serve/cache.h"
#include "serve/journal.h"
#include "serve/request.h"
#include "serve/snapshot.h"
#include "serve/update.h"
#include "util/status.h"

namespace lamo {

/// Default response-cache capacity (entries) for `lamo serve`.
inline constexpr size_t kDefaultServeCacheCapacity = 4096;

/// Live server counters, exposed by the STATS request. Kept separately from
/// the obs layer so STATS works without a `--report` sink installed; the
/// handlers additionally feed the `serve.*` obs counters and histograms when
/// a sink is present.
struct ServeStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> updates{0};
};

/// What the stream/TCP server loops need from a request handler: one
/// thread-safe line-in/response-out method plus the counters the drain
/// banner prints. `lamo serve` implements it over one snapshot
/// (SnapshotService); `lamo router` implements it over a backend cluster
/// (RouterService) — both share the same connection, overload-protection
/// and dispatch machinery below.
class LineService {
 public:
  virtual ~LineService() = default;

  /// Processes one request line and returns the full wire response
  /// (`OK <n>` + payload, or `ERR ...`). Must be thread-safe.
  virtual std::string Handle(const std::string& line) = 0;

  /// Called once per accepted TCP connection, before its reader starts.
  virtual void OnConnection() {}

  /// Lifetime totals for the drain banner.
  virtual uint64_t TotalRequests() const = 0;
  virtual uint64_t TotalConnections() const = 0;
};

/// Answers protocol requests against one loaded snapshot. Construction wires
/// the prediction context and the default (labeled-motif) predictor from the
/// packed artifacts — no text parsing, no weight or closure recomputation;
/// UsePredictor swaps in any registered backend before serving starts.
/// Handle() is thread-safe: queries hold the snapshot lock shared (the
/// snapshot is immutable to them, the cache is internally locked, the stats
/// are atomics), while the mutation verbs (ADDEDGE / DELEDGE) and
/// PREDICT_EDGE serialize behind it exclusively — updates patch the
/// snapshot in place and both paths share the engine's single-threaded
/// labeling machinery.
class SnapshotService : public LineService {
 public:
  /// Takes ownership of the snapshot. `cache_capacity` 0 disables response
  /// memoization (every request recomputes; responses are unchanged).
  explicit SnapshotService(Snapshot snapshot,
                           size_t cache_capacity = kDefaultServeCacheCapacity);

  /// Replaces the active backend with the one registered under `name`
  /// ("lms" | "gds" | "role"). gds/role draw their precomputed matrices from
  /// the snapshot's predictor section, so a version-2 snapshot can only
  /// serve lms — selecting another backend returns InvalidArgument advising
  /// a repack. Call before serving starts: Handle() is not synchronized
  /// against a concurrent swap.
  Status UsePredictor(const std::string& name);

  SnapshotService(const SnapshotService&) = delete;
  SnapshotService& operator=(const SnapshotService&) = delete;

  /// Processes one request line and returns the full wire response
  /// (`OK <n>` + payload, or `ERR ...`), updating stats, the cache, and the
  /// serve.* observability metrics.
  std::string Handle(const std::string& line) override;

  void OnConnection() override;
  uint64_t TotalRequests() const override {
    return stats_.requests.load(std::memory_order_relaxed);
  }
  uint64_t TotalConnections() const override {
    return stats_.connections.load(std::memory_order_relaxed);
  }

  const Snapshot& snapshot() const { return snapshot_; }
  /// Registry key of the active backend ("lms" until UsePredictor succeeds).
  const std::string& predictor_name() const { return predictor_name_; }
  ServeStats& stats() { return stats_; }
  const ServeStats& stats() const { return stats_; }
  size_t cache_entries() const { return cache_.size(); }

  /// Attaches a sampled JSONL access log (borrowed; caller keeps it alive
  /// past the last Handle call). Logging never changes response bytes.
  void set_access_log(AccessLog* log) { access_log_ = log; }

  /// Attaches the write-ahead delta journal at `path` (created if absent;
  /// Corruption if an existing journal binds a different snapshot) and
  /// replays any entries it already holds — the crash-recovery path. Call
  /// before serving starts. Without a journal, updates are accepted but
  /// ephemeral: a restart reloads the untouched base snapshot.
  Status AttachJournal(const std::string& path);

 private:
  StatusOr<std::vector<std::string>> Payload(const Request& request);
  StatusOr<std::vector<std::string>> Predict(const Request& request);
  StatusOr<std::vector<std::string>> Motifs(const Request& request);
  StatusOr<std::vector<std::string>> TermInfo(const Request& request);
  std::vector<std::string> Health() const;
  std::vector<std::string> Stats() const;
  std::vector<std::string> Metrics();
  /// ADDEDGE / DELEDGE: journal, apply, refresh predictor state, invalidate
  /// affected cache entries. Caller holds snapshot_mu_ exclusively.
  StatusOr<std::vector<std::string>> ApplyEdge(const Request& request);
  /// PREDICT_EDGE. Caller holds snapshot_mu_ exclusively (the scoring
  /// shares the engine's scratch overlay and memoizing similarity).
  StatusOr<std::vector<std::string>> PredictEdge(const Request& request);
  /// Drops the cache entries an applied update can have changed.
  size_t InvalidateCache(const UpdateResult& result);

  Snapshot snapshot_;
  PredictionContext context_;
  std::unique_ptr<FunctionPredictor> predictor_;
  std::string predictor_name_ = "lms";
  ResponseCache cache_;
  ServeStats stats_;
  AccessLog* access_log_ = nullptr;
  /// Readers (queries) shared, writers (ADDEDGE/DELEDGE/PREDICT_EDGE)
  /// exclusive. Cache operations happen under the same lock so an update's
  /// invalidation can never interleave with a stale Put.
  std::shared_mutex snapshot_mu_;
  std::unique_ptr<UpdateEngine> engine_;   // guarded by snapshot_mu_
  std::unique_ptr<UpdateJournal> journal_;  // guarded by snapshot_mu_
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::mutex metrics_mu_;
  MetricWindows windows_;  // guarded by metrics_mu_
};

/// One-shot stream mode (`lamo serve --stdin`): reads request lines from
/// `in` until EOF, writes each response to `out`. Requests are dispatched
/// onto the parallel runtime's thread pool exactly as in TCP mode, and
/// responses keep request order, so output is deterministic for any thread
/// count. Used by tests and the determinism guard.
Status RunStreamServer(LineService* service, std::istream& in,
                       std::ostream& out);

/// Overload-protection knobs for the TCP server. Every limit has a "0
/// disables" escape hatch so tests can exercise one guard at a time, but the
/// CLI defaults are all armed: an abusive client (slowloris writer, oversized
/// request line, half-closed socket, connection flood) costs a bounded amount
/// of memory and one bounded-lifetime thread, never a hang.
struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  /// Per-request budget covering both the partial-line read (slowloris
  /// guard) and the dispatch-to-response wait. Expiry sends
  /// `ERR DeadlineExceeded ...` and closes the connection. 0 disables.
  uint64_t request_timeout_ms = 10'000;
  /// Idle reaper: a connection with no buffered partial line and no traffic
  /// for this long is closed silently. 0 disables.
  uint64_t idle_timeout_ms = 60'000;
  /// Accept-backpressure threshold: at this many live connections the listen
  /// socket is removed from the poll set, so further clients queue in the
  /// kernel backlog instead of spawning threads. 0 means unlimited.
  size_t max_conns = 64;
  /// A request line longer than this (no newline seen) gets
  /// `ERR InvalidArgument request line too long` and a close. Bounds
  /// per-connection buffer memory.
  size_t max_line_bytes = 64 * 1024;
  /// Invoked once with the bound port after listen() succeeds, before the
  /// accept loop starts. Lets in-process tests discover an ephemeral port
  /// without parsing the log. May be empty.
  std::function<void(uint16_t)> on_listening;
  /// When set, SIGHUP is caught for the server's lifetime and this callback
  /// runs on the accept-loop thread (not in signal context). The router uses
  /// it to trigger a rolling snapshot reload; keep the callback quick — hand
  /// long work to another thread.
  std::function<void()> on_sighup;
  /// Program name for the listening/drained log lines ("lamo serve",
  /// "lamo router").
  const char* name = "lamo serve";
  /// Human-readable progress lines (listening/drained); never the wire
  /// protocol. Defaults to stdout in the CLI.
  std::FILE* log = nullptr;
};

/// Long-lived TCP mode: binds 127.0.0.1:`options.port`, prints
/// `listening on 127.0.0.1:<port>` to `options.log`, and serves concurrent
/// connections — one reader thread per connection, each request dispatched
/// onto the shared thread pool — until SIGINT or SIGTERM. Overload behavior
/// (deadlines, idle reaping, line-length guard, accept backpressure) follows
/// `options`; see ServeOptions. Shutdown is graceful: stop accepting,
/// unblock readers, finish in-flight requests, join everything, then return
/// OK so the CLI can flush --report/--trace.
Status RunTcpServer(LineService* service, const ServeOptions& options);

}  // namespace lamo

#endif  // LAMO_SERVE_SERVER_H_
