#ifndef LAMO_SERVE_UPDATE_H_
#define LAMO_SERVE_UPDATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/lamofinder.h"
#include "graph/mutable_index.h"
#include "motif/canon_cache.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace lamo {

/// What one applied edge mutation changed — the service uses this to tick
/// update.* counters and to invalidate exactly the affected response-cache
/// entries.
struct UpdateResult {
  bool add = true;
  VertexId u = 0;
  VertexId v = 0;
  /// Connected k-sets re-enumerated around the edge (all sizes).
  size_t resubgraphs = 0;
  /// Conforming occurrences appended to / erased from stored motifs.
  size_t occ_added = 0;
  size_t occ_removed = 0;
  /// Proteins whose MOTIFS/PREDICT answers can differ after the update:
  /// the endpoints, every protein of an added/removed occurrence, every
  /// protein siting a motif whose frequency or strength moved, and every
  /// protein whose site-index row changed. Sorted, deduplicated.
  std::vector<VertexId> affected;
  /// True when the GDS signature matrix changed (gds predictions are
  /// global — similarity ranks against every annotated protein — so any
  /// change invalidates all gds answers).
  bool signatures_changed = false;
  /// True when the role-vector matrix changed (role vectors are column-
  /// normalized, so one edge can perturb every row).
  bool roles_changed = false;
};

/// One candidate interaction scored by motif completion.
struct EdgeScore {
  /// Sum over labeled motifs of (conforming instances the edge would
  /// complete) x (motif strength) — Albert & Albert's motif-completion
  /// count, weighted by the paper's LMS.
  double score = 0.0;
  /// Total conforming instances the edge would complete.
  size_t completions = 0;
  /// (motif index, completions) for every motif with a nonzero count,
  /// ascending by motif index.
  std::vector<std::pair<uint32_t, size_t>> per_motif;
};

/// ---- Incremental snapshot maintenance -------------------------------------
///
/// Owns the dynamic-interactome math over a live Snapshot: applies one edge
/// mutation by re-enumerating only the connected k-sets containing both
/// endpoints (EnumeratePairSubgraphs) and diffing each set's induced pattern
/// with and without the edge through the SharedCanonCache. From the deltas
/// it patches, in place:
///
///   * motif occurrence lists (conforming occurrences only — each candidate
///     is conformance-checked against the motif's labeling scheme, exactly
///     the check `lamo label` ran at pack time; schemes themselves are
///     pinned at pack time and never relearned online);
///   * motif frequencies (counted globally, even on shards that do not
///     store the occurrence) and, through them, every LMS strength in the
///     affected size classes;
///   * the per-protein site index (rebuilt with BuildSnapshot's first-seen
///     dedup so an equal-state repack is byte-identical);
///   * the GDS signature matrix (per-set orbit count deltas, k = 2..5);
///   * the role-vector matrix (full recompute — column normalization makes
///     every row depend on every edge).
///
/// The engine and `lamo pack --apply-deltas` share this exact code path,
/// which is what makes a live-updated server byte-identical to one started
/// from a freshly repacked snapshot — the serving stack's core contract,
/// extended to updates.
///
/// Not thread-safe: the service serializes Apply/ScoreEdge behind its
/// snapshot lock (LaMoFinder's memoizing term similarity is not safe for
/// concurrent use either).
class UpdateEngine {
 public:
  /// `snapshot` must outlive the engine and not be modified externally
  /// while the engine lives (a snapshot swap requires a new engine).
  explicit UpdateEngine(Snapshot* snapshot);

  UpdateEngine(const UpdateEngine&) = delete;
  UpdateEngine& operator=(const UpdateEngine&) = delete;

  /// Validates a mutation without applying it: endpoints in range and
  /// distinct, edge absent (add) / present (delete).
  Status Check(bool add, VertexId u, VertexId v) const;

  /// Applies one mutation to the snapshot. On error the snapshot is
  /// unchanged (all validation happens before the first write).
  Status Apply(bool add, VertexId u, VertexId v, UpdateResult* result);

  /// Scores the candidate interaction {u, v} by motif completion. The edge
  /// must be absent; the snapshot is unchanged (the edge is added to a
  /// scratch overlay and removed again).
  Status ScoreEdge(VertexId u, VertexId v, EdgeScore* out);

 private:
  SharedCanonCache& CacheFor(size_t k);
  /// Motif sizes plus the graphlet sizes 2..5 when GDS is maintained.
  std::vector<size_t> UpdateSizes() const;

  Snapshot* snap_;
  MutableGraphIndex graph_;
  LaMoFinder finder_;
  std::map<size_t, std::unique_ptr<SharedCanonCache>> caches_;
  /// size -> canonical code -> indices of labeled motifs with that pattern
  /// (several labeling schemes can share one pattern).
  std::map<size_t, std::map<std::string, std::vector<uint32_t>>>
      motifs_by_code_;
};

}  // namespace lamo

#endif  // LAMO_SERVE_UPDATE_H_
