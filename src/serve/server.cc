#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/obs.h"
#include "obs/prometheus.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "predict/registry.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lamo {
namespace {

/// Requests handled, by outcome. request_us covers every request (parse
/// errors included), so its count always equals serve.requests.
const size_t kObsRequests = ObsCounterId("serve.requests");
const size_t kObsErrors = ObsCounterId("serve.errors");
const size_t kObsCacheHits = ObsCounterId("serve.cache_hits");
const size_t kObsCacheMisses = ObsCounterId("serve.cache_misses");
const size_t kObsConnections = ObsCounterId("serve.connections");
const size_t kObsAccessLogged = ObsCounterId("serve.access_logged");
const size_t kHistRequestUs = ObsHistogramId("serve.request_us");
const size_t kHistQueueUs = ObsHistogramId("serve.queue_us");

/// Overload-protection outcomes. timeouts counts expired request budgets
/// (slowloris partial lines and slow dispatches alike); idle_reaped counts
/// silent closes of quiet connections; overlong_lines counts the
/// line-length guard firing; backpressure_waits counts poll cycles entered
/// with the listen socket parked because max_conns live connections exist.
const size_t kObsTimeouts = ObsCounterId("serve.timeouts");
const size_t kObsIdleReaped = ObsCounterId("serve.idle_reaped");
const size_t kObsOverlongLines = ObsCounterId("serve.overlong_lines");
const size_t kObsBackpressureWaits = ObsCounterId("serve.backpressure_waits");

/// Live-update telemetry. applied == added + deleted always (report-check
/// invariant); resubgraphs counts the connected k-sets re-enumerated around
/// mutated edges (each also ticks esu.subgraphs, so resubgraphs <=
/// esu.subgraphs holds in serve reports); journal_replayed counts entries
/// re-applied at AttachJournal time after a restart.
const size_t kObsUpdatesApplied = ObsCounterId("update.applied");
const size_t kObsUpdatesAdded = ObsCounterId("update.added");
const size_t kObsUpdatesDeleted = ObsCounterId("update.deleted");
const size_t kObsUpdateOccAdded = ObsCounterId("update.occ_added");
const size_t kObsUpdateOccRemoved = ObsCounterId("update.occ_removed");
const size_t kObsUpdateResubgraphs = ObsCounterId("update.resubgraphs");
const size_t kObsUpdateJournalReplayed = ObsCounterId("update.journal_replayed");
const size_t kObsUpdateCacheEvicted = ObsCounterId("update.cache_evicted");
const size_t kHistUpdateUs = ObsHistogramId("update.update_us");

/// Armed between the durable journal append and the in-memory apply: a
/// crash here proves replay reconstructs the acknowledged-but-unapplied
/// update (the "entry present" consistency case).
const size_t kFaultUpdateApply = FaultPointId("update.apply");

/// True for the verbs that need the snapshot lock exclusively.
bool NeedsExclusive(RequestType type) {
  return type == RequestType::kAddEdge || type == RequestType::kDelEdge ||
         type == RequestType::kPredictEdge;
}

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

// The verb token of a raw request line (request-ID tokens skipped), for
// access-log records of lines that may not parse.
std::string RequestVerb(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r");
  while (begin != std::string::npos && line[begin] == '#') {
    const size_t end = line.find_first_of(" \t\r", begin);
    begin = end == std::string::npos
                ? std::string::npos
                : line.find_first_not_of(" \t\r", end);
  }
  if (begin == std::string::npos) return "-";
  const size_t end = line.find_first_of(" \t\r", begin);
  return line.substr(begin,
                     end == std::string::npos ? std::string::npos : end - begin);
}

}  // namespace

SnapshotService::SnapshotService(Snapshot snapshot, size_t cache_capacity)
    : snapshot_(std::move(snapshot)), cache_(cache_capacity) {
  context_.ppi = &snapshot_.graph;
  context_.categories = snapshot_.categories;
  context_.protein_categories = snapshot_.protein_categories;
  const Status status = UsePredictor("lms");
  LAMO_CHECK(status.ok());  // every snapshot carries the lms inputs
  // The update engine borrows the snapshot in place; snapshot_.graph keeps
  // its address across updates (contents are reassigned), so context_.ppi
  // stays valid.
  engine_ = std::make_unique<UpdateEngine>(&snapshot_);
}

Status SnapshotService::UsePredictor(const std::string& name) {
  if (name != "lms" && snapshot_.version < 3) {
    return Status::InvalidArgument(
        "snapshot is version " + std::to_string(snapshot_.version) +
        " and carries no predictor section; repack with `lamo pack` to serve "
        "--predictor " +
        name);
  }
  PredictorInputs inputs;
  inputs.context = &context_;
  inputs.ontology = &snapshot_.ontology;
  inputs.motifs = &snapshot_.motifs;
  inputs.gds_signatures = &snapshot_.gds_signatures;
  inputs.role_vectors = &snapshot_.role_vectors;
  inputs.role_dim = snapshot_.role_dim;
  auto made = MakePredictor(name, inputs);
  if (!made.ok()) return made.status();
  predictor_ = std::move(made).value();
  predictor_name_ = name;
  return Status::OK();
}

std::string SnapshotService::Handle(const std::string& line) {
  const bool observed = ObsEnabled();
  const bool timed = observed || access_log_ != nullptr;
  const Clock::time_point start = timed ? Clock::now() : Clock::time_point();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ObsIncrement(kObsRequests);

  std::string response;
  uint64_t request_id = 0;
  const char* cache_outcome = nullptr;
  bool ok_response = true;
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    ObsIncrement(kObsErrors);
    response = FormatErrorResponse(parsed.status());
    ok_response = false;
  } else {
    const Request& request = *parsed;
    request_id = request.id;
    // Queries share the snapshot lock; mutations (and PREDICT_EDGE, which
    // borrows the update engine's scratch state) take it exclusively. The
    // cache operations sit inside the lock so a reader can never Put a
    // response computed against a pre-update snapshot after the update's
    // invalidation pass ran.
    std::shared_lock<std::shared_mutex> read_lock(snapshot_mu_,
                                                  std::defer_lock);
    std::unique_lock<std::shared_mutex> write_lock(snapshot_mu_,
                                                   std::defer_lock);
    if (NeedsExclusive(request.type)) {
      write_lock.lock();
    } else {
      read_lock.lock();
    }
    const bool cacheable = IsCacheable(request.type) && cache_.capacity() > 0;
    const std::string key = cacheable ? CacheKey(request) : std::string();
    if (cacheable && cache_.Get(key, &response)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ObsIncrement(kObsCacheHits);
      cache_outcome = "hit";
    } else {
      if (cacheable) {
        stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        ObsIncrement(kObsCacheMisses);
        cache_outcome = "miss";
      }
      auto payload = Payload(request);
      if (!payload.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        ObsIncrement(kObsErrors);
        response = FormatErrorResponse(payload.status());
        ok_response = false;
      } else {
        response = FormatOkResponse(*payload);
        if (cacheable) cache_.Put(key, response);
      }
    }
  }
  const uint64_t total_us = timed ? MicrosSince(start) : 0;
  if (observed) ObsObserve(kHistRequestUs, total_us);
  if (access_log_ != nullptr) {
    AccessLog::Entry entry;
    entry.id = request_id;
    entry.verb = RequestVerb(line);
    entry.request = line;
    entry.ok = ok_response;
    entry.total_us = total_us;
    entry.cache = cache_outcome;
    entry.spans_us.emplace_back("handle_us", total_us);
    if (access_log_->Log(entry)) ObsIncrement(kObsAccessLogged);
  }
  return response;
}

StatusOr<std::vector<std::string>> SnapshotService::Payload(
    const Request& request) {
  switch (request.type) {
    case RequestType::kPredict:
      return Predict(request);
    case RequestType::kMotifs:
      return Motifs(request);
    case RequestType::kTermInfo:
      return TermInfo(request);
    case RequestType::kHealth:
      return Health();
    case RequestType::kStats:
      return Stats();
    case RequestType::kMetrics:
      return Metrics();
    case RequestType::kAddEdge:
    case RequestType::kDelEdge:
      return ApplyEdge(request);
    case RequestType::kPredictEdge:
      return PredictEdge(request);
  }
  return Status::Internal("unhandled request type");
}

StatusOr<std::vector<std::string>> SnapshotService::ApplyEdge(
    const Request& request) {
  const bool add = request.type == RequestType::kAddEdge;
  const VertexId u = request.protein;
  const VertexId v = request.protein2;
  Status status = engine_->Check(add, u, v);
  if (!status.ok()) return status;
  // Journal first (durably), then apply: at every kill point the journal
  // either misses the entry (update never acked — replay gives the
  // pre-update state) or holds it (replay gives the post-update state).
  if (journal_ != nullptr) {
    status = journal_->Append({add, u, v});
    if (!status.ok()) return status;
  }
  const FaultAction fault = FaultHit(kFaultUpdateApply);
  if (fault == FaultAction::kError) {
    return Status::Internal(
        "injected apply failure; the update is journaled and will replay on "
        "restart");
  }
  const Clock::time_point start = Clock::now();
  UpdateResult result;
  status = engine_->Apply(add, u, v, &result);
  if (!status.ok()) return status;
  // The predictor indexes the pre-update motif state (lms copies the site
  // index at construction); rebuild it from the patched snapshot.
  status = UsePredictor(predictor_name_);
  if (!status.ok()) return status;
  const size_t evicted = InvalidateCache(result);

  stats_.updates.fetch_add(1, std::memory_order_relaxed);
  ObsIncrement(kObsUpdatesApplied);
  ObsIncrement(add ? kObsUpdatesAdded : kObsUpdatesDeleted);
  ObsAdd(kObsUpdateOccAdded, result.occ_added);
  ObsAdd(kObsUpdateOccRemoved, result.occ_removed);
  ObsAdd(kObsUpdateResubgraphs, result.resubgraphs);
  ObsAdd(kObsUpdateCacheEvicted, evicted);
  if (ObsEnabled()) ObsObserve(kHistUpdateUs, MicrosSince(start));

  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "applied %s %u %u resubgraphs=%zu occ_added=%zu "
                "occ_removed=%zu affected=%zu evicted=%zu",
                add ? "ADDEDGE" : "DELEDGE", u, v, result.resubgraphs,
                result.occ_added, result.occ_removed, result.affected.size(),
                evicted);
  return std::vector<std::string>{buffer};
}

StatusOr<std::vector<std::string>> SnapshotService::PredictEdge(
    const Request& request) {
  EdgeScore score;
  Status status = engine_->ScoreEdge(request.protein, request.protein2,
                                     &score);
  if (!status.ok()) return status;
  std::vector<std::string> lines;
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "candidate edge %u %u score %.3f completions %zu motifs %zu",
                request.protein, request.protein2, score.score,
                score.completions, score.per_motif.size());
  lines.emplace_back(buffer);
  for (const auto& [mi, count] : score.per_motif) {
    const LabeledMotif& motif = snapshot_.motifs[mi];
    std::snprintf(buffer, sizeof buffer,
                  "  motif %u size %zu strength %.3f completions %zu", mi,
                  motif.size(), motif.strength, count);
    lines.emplace_back(buffer);
  }
  return lines;
}

size_t SnapshotService::InvalidateCache(const UpdateResult& result) {
  if (cache_.capacity() == 0) return 0;
  // gds ranks every protein against the whole signature matrix and role
  // vectors are globally normalized, so when those inputs moved every
  // PREDICT answer is suspect. lms answers depend only on the protein's
  // own sites and the strengths of motifs siting it — both folded into
  // `affected` by the engine.
  const bool all_predicts =
      (predictor_name_ == "gds" && result.signatures_changed) ||
      (predictor_name_ == "role" && result.roles_changed);
  std::unordered_set<std::string> exact;
  std::unordered_set<std::string> predict_prefixes;
  for (const VertexId p : result.affected) {
    exact.insert("MOTIFS " + std::to_string(p));
    predict_prefixes.insert("PREDICT " + std::to_string(p) + " ");
  }
  return cache_.EraseIf([&](const std::string& key) {
    if (key.rfind("PREDICT ", 0) == 0) {
      if (all_predicts) return true;
      const size_t space = key.find(' ', 8);
      return space != std::string::npos &&
             predict_prefixes.count(key.substr(0, space + 1)) > 0;
    }
    return exact.count(key) > 0;
  });
}

Status SnapshotService::AttachJournal(const std::string& path) {
  std::vector<DeltaEntry> replay;
  auto journal = UpdateJournal::Open(path, snapshot_.checksum, &replay);
  if (!journal.ok()) return journal.status();
  journal_ = std::make_unique<UpdateJournal>(std::move(journal).value());
  // Re-apply journaled mutations in order — the crash-recovery path. Each
  // replayed entry ticks the same update counters a live apply would, plus
  // update.journal_replayed, so a restart is observable.
  for (const DeltaEntry& entry : replay) {
    UpdateResult result;
    Status status = engine_->Apply(entry.add, entry.u, entry.v, &result);
    if (!status.ok()) {
      return Status::Corruption(
          "journal replay failed at " + std::string(entry.add ? "ADDEDGE "
                                                              : "DELEDGE ") +
          std::to_string(entry.u) + " " + std::to_string(entry.v) + ": " +
          status.message());
    }
    stats_.updates.fetch_add(1, std::memory_order_relaxed);
    ObsIncrement(kObsUpdatesApplied);
    ObsIncrement(entry.add ? kObsUpdatesAdded : kObsUpdatesDeleted);
    ObsAdd(kObsUpdateOccAdded, result.occ_added);
    ObsAdd(kObsUpdateOccRemoved, result.occ_removed);
    ObsAdd(kObsUpdateResubgraphs, result.resubgraphs);
    ObsIncrement(kObsUpdateJournalReplayed);
  }
  if (!replay.empty()) {
    const Status status = UsePredictor(predictor_name_);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> SnapshotService::Predict(
    const Request& request) {
  if (request.protein >= snapshot_.graph.num_vertices()) {
    return Status::InvalidArgument("protein out of range");
  }
  return PredictionOutputLines(context_, snapshot_.ontology, *predictor_,
                               request.protein, request.top_k);
}

StatusOr<std::vector<std::string>> SnapshotService::Motifs(
    const Request& request) {
  if (request.protein >= snapshot_.graph.num_vertices()) {
    return Status::InvalidArgument("protein out of range");
  }
  std::vector<std::string> lines;
  char buffer[160];
  for (const SnapshotSite& site : snapshot_.sites[request.protein]) {
    const LabeledMotif& motif = snapshot_.motifs[site.motif];
    std::snprintf(buffer, sizeof buffer,
                  "motif %u vertex %u size %zu frequency %zu strength %.3f",
                  site.motif, site.vertex, motif.size(), motif.frequency,
                  motif.strength);
    lines.emplace_back(buffer);
  }
  return lines;
}

StatusOr<std::vector<std::string>> SnapshotService::TermInfo(
    const Request& request) {
  const TermId t = snapshot_.ontology.FindTerm(request.term);
  if (t == kInvalidTerm) {
    return Status::NotFound("unknown term \"" + request.term + "\"");
  }
  std::vector<std::string> lines;
  char buffer[256];
  lines.push_back("term " + snapshot_.ontology.TermName(t));
  lines.push_back("id " + std::to_string(t));
  lines.push_back("depth " + std::to_string(snapshot_.ontology.Depth(t)));
  std::snprintf(buffer, sizeof buffer, "weight %.6g",
                snapshot_.weights.Weight(t));
  lines.emplace_back(buffer);
  lines.push_back(std::string("informative ") +
                  (snapshot_.informative.IsInformative(t) ? "1" : "0"));
  lines.push_back(std::string("border ") +
                  (snapshot_.informative.IsBorderInformative(t) ? "1" : "0"));
  lines.push_back(std::string("label_candidate ") +
                  (snapshot_.informative.IsLabelCandidate(t) ? "1" : "0"));
  std::string parents = "parents ";
  bool first = true;
  for (TermId parent : snapshot_.ontology.Parents(t)) {
    if (!first) parents += ',';
    parents += snapshot_.ontology.TermName(parent);
    first = false;
  }
  if (first) parents += '-';
  lines.push_back(std::move(parents));
  return lines;
}

std::vector<std::string> SnapshotService::Health() const {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "ready proteins=%zu terms=%zu motifs=%zu categories=%zu "
                "shard=%u/%u",
                snapshot_.graph.num_vertices(), snapshot_.ontology.num_terms(),
                snapshot_.motifs.size(), snapshot_.categories.size(),
                snapshot_.shard_id, snapshot_.num_shards);
  return {buffer};
}

void SnapshotService::OnConnection() {
  stats_.connections.fetch_add(1, std::memory_order_relaxed);
  ObsIncrement(kObsConnections);
}

std::vector<std::string> SnapshotService::Stats() const {
  std::vector<std::string> lines;
  // Snapshot identity first: after a rolling reload the router (and any
  // operator) verifies which model this backend serves by checksum, not by
  // trusting the path it was started with.
  char checksum[32];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(snapshot_.checksum));
  lines.push_back("snapshot_path " + (snapshot_.source_path.empty()
                                          ? std::string("-")
                                          : snapshot_.source_path));
  lines.push_back(std::string("snapshot_checksum ") + checksum);
  lines.push_back("shard " + std::to_string(snapshot_.shard_id) + "/" +
                  std::to_string(snapshot_.num_shards));
  // The active backend, so A/B deployments (different --predictor per router
  // slot) are observable from outside.
  lines.push_back("predictor " + predictor_name_);
  lines.push_back(
      "requests " +
      std::to_string(stats_.requests.load(std::memory_order_relaxed)));
  lines.push_back(
      "errors " + std::to_string(stats_.errors.load(std::memory_order_relaxed)));
  lines.push_back(
      "cache_hits " +
      std::to_string(stats_.cache_hits.load(std::memory_order_relaxed)));
  lines.push_back(
      "cache_misses " +
      std::to_string(stats_.cache_misses.load(std::memory_order_relaxed)));
  lines.push_back("cache_entries " + std::to_string(cache_.size()));
  lines.push_back("cache_capacity " + std::to_string(cache_.capacity()));
  lines.push_back(
      "connections " +
      std::to_string(stats_.connections.load(std::memory_order_relaxed)));
  lines.push_back(
      "updates " +
      std::to_string(stats_.updates.load(std::memory_order_relaxed)));
  lines.push_back("threads " + std::to_string(ThreadCount()));
  // Monotonic-clock fields so external scrapers can turn counter deltas into
  // rates: uptime_s is seconds since this service was constructed and
  // start_time the construction instant on the same monotonic scale.
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "uptime_s %.3f",
                std::chrono::duration<double>(Clock::now() - start_).count());
  lines.emplace_back(buffer);
  std::snprintf(buffer, sizeof buffer, "start_time %.3f",
                std::chrono::duration<double>(start_.time_since_epoch()).count());
  lines.emplace_back(buffer);
  return lines;
}

std::vector<std::string> SnapshotService::Metrics() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  const Clock::time_point now = Clock::now();
  const double uptime_s = std::chrono::duration<double>(now - start_).count();
  const double start_time_s =
      std::chrono::duration<double>(start_.time_since_epoch()).count();
  const uint64_t now_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count());
  ObsSink* sink = GetObsSink();
  std::vector<PromFamily> families = CollectPromFamilies(
      sink, sink != nullptr ? &windows_ : nullptr, now_ms, uptime_s,
      start_time_s);
  // Prometheus-style info family: constant 1 with the active backend as a
  // label, so scrapes (and the router's relabeled re-export) can tell which
  // predictor each process serves.
  PromFamily info;
  info.name = "lamo_serve_predictor_info";
  info.type = "gauge";
  info.samples.push_back("lamo_serve_predictor_info{predictor=\"" +
                         predictor_name_ + "\"} 1");
  families.push_back(std::move(info));
  return RenderPromLines(families);
}

namespace {

/// Runs one request on the pool and blocks for its response, preserving
/// request order within the calling connection. Queue wait feeds the
/// serve.queue_us histogram when observability is on.
std::string Dispatch(ThreadPool& pool, LineService& service,
                     const std::string& line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  const bool observed = ObsEnabled();
  const Clock::time_point enqueued =
      observed ? Clock::now() : Clock::time_point();
  pool.Submit([&service, line, promise, observed, enqueued] {
    if (observed) ObsObserve(kHistQueueUs, MicrosSince(enqueued));
    promise->set_value(service.Handle(line));
  });
  return future.get();
}

/// ---- TCP plumbing ---------------------------------------------------------

/// Signal handlers write one byte here (async-signal-safe) to wake the
/// accept loop's poll(). The byte identifies the signal class: 'S' asks for
/// shutdown (SIGINT/SIGTERM), 'H' asks for the on_sighup callback (SIGHUP,
/// installed only when the callback is set).
std::atomic<int> g_shutdown_pipe_wr{-1};

void WriteSignalByte(char byte) {
  const int fd = g_shutdown_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    // poll() only needs readability; a full pipe already guarantees that.
    [[maybe_unused]] ssize_t ignored = write(fd, &byte, 1);
  }
}

void OnShutdownSignal(int) { WriteSignalByte('S'); }
void OnHupSignal(int) { WriteSignalByte('H'); }

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Like Dispatch but gives up after `timeout_ms`. On expiry the pool task
/// keeps running harmlessly (it owns its line copy and shared promise; the
/// service outlives the pool), but the connection is told
/// `ERR DeadlineExceeded` and closed so an abusive or unlucky client cannot
/// pin a reader thread forever. `timeout_ms` 0 means no deadline.
bool DispatchWithDeadline(ThreadPool& pool, LineService& service,
                          const std::string& line, uint64_t timeout_ms,
                          std::string* response) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  const bool observed = ObsEnabled();
  const Clock::time_point enqueued =
      observed ? Clock::now() : Clock::time_point();
  pool.Submit([&service, line, promise, observed, enqueued] {
    if (observed) ObsObserve(kHistQueueUs, MicrosSince(enqueued));
    promise->set_value(service.Handle(line));
  });
  if (timeout_ms > 0 &&
      future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
          std::future_status::ready) {
    return false;
  }
  *response = future.get();
  return true;
}

/// Reads newline-terminated requests from one client socket, answering each
/// through the pool. Returns on EOF, error, socket shutdown, an overload
/// guard firing, or a stop request between lines.
///
/// The read side is poll()-driven so two deadlines can be enforced without
/// extra threads: a connection holding an unfinished request line longer
/// than the request budget (slowloris) gets `ERR DeadlineExceeded`, and a
/// connection with no partial line and no traffic past the idle budget is
/// reaped silently — including half-closed sockets whose clients called
/// shutdown(SHUT_WR) and then hung around.
void ConnectionLoop(int fd, ThreadPool& pool, LineService& service,
                    const ServeOptions& options,
                    const std::atomic<bool>& stopping) {
  std::string buffer;
  char chunk[4096];
  Clock::time_point line_start = Clock::now();  // first byte of current line
  Clock::time_point last_activity = line_start;
  while (!stopping.load(std::memory_order_acquire)) {
    size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > options.max_line_bytes) {
        ObsIncrement(kObsOverlongLines);
        SendAll(fd, FormatErrorResponse(
                        Status::InvalidArgument("request line too long")));
        return;
      }
      // Pick the nearest armed deadline for this poll.
      int wait_ms = -1;
      const Clock::time_point now = Clock::now();
      if (!buffer.empty() && options.request_timeout_ms > 0) {
        const auto deadline =
            line_start + std::chrono::milliseconds(options.request_timeout_ms);
        wait_ms = static_cast<int>(std::max<int64_t>(
            0, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                     now)
                   .count()));
      } else if (buffer.empty() && options.idle_timeout_ms > 0) {
        const auto deadline =
            last_activity + std::chrono::milliseconds(options.idle_timeout_ms);
        wait_ms = static_cast<int>(std::max<int64_t>(
            0, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                     now)
                   .count()));
      }
      pollfd pfd{fd, POLLIN, 0};
      const int ready = poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (ready == 0) {  // deadline expired
        if (!buffer.empty()) {
          ObsIncrement(kObsTimeouts);
          SendAll(fd, FormatErrorResponse(Status::DeadlineExceeded(
                          "request line not completed within deadline")));
        } else {
          ObsIncrement(kObsIdleReaped);
        }
        return;
      }
      const ssize_t n = recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return;  // EOF, error, or shutdown()
      if (buffer.empty()) line_start = Clock::now();
      last_activity = Clock::now();
      buffer.append(chunk, static_cast<size_t>(n));
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    std::string response;
    if (!DispatchWithDeadline(pool, service, line, options.request_timeout_ms,
                              &response)) {
      ObsIncrement(kObsTimeouts);
      SendAll(fd, FormatErrorResponse(Status::DeadlineExceeded(
                      "request did not complete within deadline")));
      return;
    }
    if (!SendAll(fd, response)) return;
    line_start = last_activity = Clock::now();
  }
}

}  // namespace

Status RunStreamServer(LineService* service, std::istream& in,
                       std::ostream& out) {
  ThreadPool pool(ThreadCount());
  std::string line;
  while (std::getline(in, line)) {
    out << Dispatch(pool, *service, line);
  }
  out.flush();
  pool.Wait();
  return Status::OK();
}

namespace {

/// One live client connection: its socket, its reader thread, and a flag the
/// thread raises when it is finished and safe to join.
struct Conn {
  int fd = -1;
  std::atomic<bool> done{false};
  std::thread thread;
};

}  // namespace

Status RunTcpServer(LineService* service, const ServeOptions& options) {
  std::FILE* log = options.log != nullptr ? options.log : stdout;
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(listen_fd);
    return Status::IoError("cannot bind 127.0.0.1:" +
                           std::to_string(options.port) + ": " +
                           std::strerror(errno));
  }
  socklen_t addr_len = sizeof addr;
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
      0) {
    close(listen_fd);
    return Status::IoError("getsockname() failed");
  }
  const uint16_t bound_port = ntohs(addr.sin_port);
  if (listen(listen_fd, 64) != 0) {
    close(listen_fd);
    return Status::IoError("listen() failed");
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(listen_fd);
    return Status::IoError("pipe() failed");
  }
  // Connection threads write one byte here when they finish, waking the
  // accept loop to reap them — and, when the server was at max_conns, to put
  // the listen socket back into the poll set.
  int conn_event_fds[2];
  if (pipe(conn_event_fds) != 0) {
    close(listen_fd);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return Status::IoError("pipe() failed");
  }
  g_shutdown_pipe_wr.store(pipe_fds[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int{}, old_term{}, old_hup{};
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);
  if (options.on_sighup) {
    struct sigaction hup_action{};
    hup_action.sa_handler = OnHupSignal;
    sigemptyset(&hup_action.sa_mask);
    sigaction(SIGHUP, &hup_action, &old_hup);
  }

  std::fprintf(log, "%s: listening on 127.0.0.1:%u (pid %ld)\n", options.name,
               bound_port, static_cast<long>(getpid()));
  std::fflush(log);
  if (options.on_listening) options.on_listening(bound_port);

  ThreadPool pool(ThreadCount());
  std::atomic<bool> stopping{false};
  std::mutex conn_mu;
  std::vector<std::unique_ptr<Conn>> conns;  // guarded by conn_mu
  const int conn_event_wr = conn_event_fds[1];

  auto reap_finished = [&conns, &conn_mu] {
    std::vector<std::unique_ptr<Conn>> finished;
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      auto it = conns.begin();
      while (it != conns.end()) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Join outside the lock; the threads have already signalled done.
    for (auto& conn : finished) conn->thread.join();
    return finished.size();
  };

  while (true) {
    size_t live;
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      live = conns.size();
    }
    const bool at_capacity = options.max_conns > 0 && live >= options.max_conns;
    if (at_capacity) ObsIncrement(kObsBackpressureWaits);

    // At capacity the listen fd is parked: new clients wait in the kernel
    // backlog instead of costing a thread each, and the conn-event pipe
    // wakes us the moment a slot frees up.
    pollfd poll_fds[3];
    poll_fds[0] = {pipe_fds[0], POLLIN, 0};
    poll_fds[1] = {conn_event_fds[0], POLLIN, 0};
    poll_fds[2] = {listen_fd, POLLIN, 0};
    const nfds_t num_fds = at_capacity ? 2 : 3;
    const int ready = poll(poll_fds, num_fds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (poll_fds[0].revents != 0) {
      // Drain the signal pipe and dispatch by byte: 'S' (SIGINT/SIGTERM)
      // starts the graceful shutdown, 'H' (SIGHUP) runs the reload callback
      // here on the accept-loop thread, outside signal context.
      char bytes[16];
      const ssize_t got = read(pipe_fds[0], bytes, sizeof bytes);
      bool shutdown_requested = false;
      for (ssize_t i = 0; i < got; ++i) {
        if (bytes[i] == 'S') shutdown_requested = true;
        if (bytes[i] == 'H' && options.on_sighup) options.on_sighup();
      }
      if (shutdown_requested) break;
    }
    if (poll_fds[1].revents != 0) {
      char drain[64];
      [[maybe_unused]] ssize_t ignored =
          read(conn_event_fds[0], drain, sizeof drain);
      reap_finished();
    }
    if (!at_capacity && (poll_fds[2].revents & POLLIN) != 0) {
      const int conn_fd = accept(listen_fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      service->OnConnection();
      auto conn = std::make_unique<Conn>();
      Conn* raw = conn.get();
      raw->fd = conn_fd;
      {
        std::lock_guard<std::mutex> lock(conn_mu);
        conns.push_back(std::move(conn));
      }
      raw->thread = std::thread([&pool, service, &options, &stopping, &conn_mu,
                                 conn_event_wr, raw] {
        ConnectionLoop(raw->fd, pool, *service, options, stopping);
        // Close under the lock so the shutdown path never calls shutdown()
        // on an fd number that was already closed and reused.
        {
          std::lock_guard<std::mutex> lock(conn_mu);
          close(raw->fd);
          raw->fd = -1;
        }
        raw->done.store(true, std::memory_order_release);
        const char byte = 1;
        [[maybe_unused]] ssize_t ignored = write(conn_event_wr, &byte, 1);
      });
    }
  }

  // Graceful drain: stop accepting, unblock blocked readers, let in-flight
  // requests finish, then join everything before the caller flushes reports.
  stopping.store(true, std::memory_order_release);
  close(listen_fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (const auto& conn : conns) {
      if (conn->fd >= 0) shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Conn>> draining;
  {
    // Move out under the lock, join outside it: exiting threads still need
    // conn_mu to close their own fd, so joining while holding it would
    // deadlock.
    std::lock_guard<std::mutex> lock(conn_mu);
    draining = std::move(conns);
    conns.clear();
  }
  for (const auto& conn : draining) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  pool.Wait();

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  if (options.on_sighup) sigaction(SIGHUP, &old_hup, nullptr);
  g_shutdown_pipe_wr.store(-1, std::memory_order_relaxed);
  close(pipe_fds[0]);
  close(pipe_fds[1]);
  close(conn_event_fds[0]);
  close(conn_event_fds[1]);

  std::fprintf(
      log, "%s: drained, served %llu requests over %llu connections\n",
      options.name,
      static_cast<unsigned long long>(service->TotalRequests()),
      static_cast<unsigned long long>(service->TotalConnections()));
  std::fflush(log);
  return Status::OK();
}

}  // namespace lamo
