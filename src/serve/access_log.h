#ifndef LAMO_SERVE_ACCESS_LOG_H_
#define LAMO_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace lamo {

/// ---- Structured access log -------------------------------------------------
///
/// A sampled JSONL request log shared by `lamo serve` and `lamo router`
/// (`--access-log PATH --access-sample N --slow-ms T`). One JSON object per
/// line, so `grep '"id":17' router.jsonl backend.jsonl.*` follows a single
/// request end-to-end via the router-stamped request ID.
///
/// Sampling keeps steady-state overhead bounded: every Nth request is logged
/// (the first always is, so short runs still produce evidence). Requests at
/// least `slow_ms` milliseconds long bypass sampling — slow requests are
/// always logged, with their span breakdown — because the tail is exactly
/// what an operator greps for.
///
/// Logging never changes response bytes; it is a pure side channel
/// (determinism_test.sh and cli_metrics_test.sh pin this).
struct AccessLogOptions {
  std::string path;
  uint64_t sample = 1;   ///< log every Nth request (1 = all, 0 treated as 1)
  uint64_t slow_ms = 0;  ///< when > 0, requests this slow always log
};

class AccessLog {
 public:
  /// Opens `options.path` for appending.
  static StatusOr<std::unique_ptr<AccessLog>> Open(
      const AccessLogOptions& options);

  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// One request's record. `verb` is the first token of the request line;
  /// `request` the raw line (whitespace-normalized by the caller if at all).
  struct Entry {
    uint64_t id = 0;            ///< router-stamped request ID (0 = direct)
    std::string verb;
    std::string request;
    bool ok = true;             ///< response was OK (vs ERR)
    uint64_t total_us = 0;
    const char* cache = nullptr;  ///< "hit" / "miss" / nullptr (uncacheable)
    int64_t backend = -1;         ///< router: backend index answering
    /// Named sub-timings, emitted under "spans" (always present for slow
    /// requests per the contract above).
    std::vector<std::pair<std::string, uint64_t>> spans_us;
  };

  /// Applies the sampling policy and writes one JSONL record when the entry
  /// qualifies. Returns true iff a line was written. Thread-safe.
  bool Log(const Entry& entry);

 private:
  AccessLog(std::FILE* file, const AccessLogOptions& options);

  std::FILE* const file_;
  const AccessLogOptions options_;
  std::mutex mu_;
  uint64_t seq_ = 0;  // requests seen, guarded by mu_
};

}  // namespace lamo

#endif  // LAMO_SERVE_ACCESS_LOG_H_
