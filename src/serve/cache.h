#ifndef LAMO_SERVE_CACHE_H_
#define LAMO_SERVE_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lamo {

/// A sharded LRU map from request line to rendered response, memoizing the
/// serve daemon's pure queries (PREDICT / MOTIFS / TERMINFO). Sharding by
/// key hash keeps lock hold times short under concurrent connections: each
/// shard has its own mutex, recency list and capacity slice.
///
/// Responses are deterministic functions of the snapshot, so cache hits are
/// byte-identical to recomputation — turning the cache off (capacity 0)
/// never changes any response, only its latency.
class ResponseCache {
 public:
  /// A cache holding at most `capacity` entries spread over `num_shards`
  /// shards (each shard gets ceil(capacity / num_shards) slots). Capacity 0
  /// disables the cache: Get always misses and Put is a no-op.
  explicit ResponseCache(size_t capacity, size_t num_shards = 16);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Looks up `key`, refreshing its recency on a hit.
  bool Get(const std::string& key, std::string* value);

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when its slice is full.
  void Put(const std::string& key, std::string value);

  /// Removes every entry whose key satisfies `pred`; returns how many were
  /// dropped. Live updates use this to invalidate exactly the responses an
  /// edge mutation can change (per-shard scan — invalidation is rare next
  /// to queries, so O(entries) under short per-shard locks is fine).
  size_t EraseIf(const std::function<bool(const std::string&)>& pred);

  /// Entries currently held, summed over shards.
  size_t size() const;

  /// Total entry capacity (0 = disabled).
  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Most-recently-used at the front; each entry is (key, response).
    std::list<std::pair<std::string, std::string>> entries;
    std::unordered_map<std::string, decltype(entries)::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lamo

#endif  // LAMO_SERVE_CACHE_H_
