#include "serve/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "predict/gds.h"
#include "predict/role_similarity.h"
#include "util/atomic_io.h"
#include "util/logging.h"

namespace lamo {

/// Befriended by Graph, Ontology, AnnotationTable, TermWeights and
/// InformativeClasses: the snapshot codec moves their precomputed private
/// arrays in and out directly, so a loaded snapshot is bit-for-bit the state
/// the pipeline computed — nothing is re-derived.
struct SnapshotAccess {
  // ---- Graph (CSR) ----
  static const std::vector<size_t>& GraphOffsets(const Graph& g) {
    return g.offsets_;
  }
  static const std::vector<VertexId>& GraphNeighbors(const Graph& g) {
    return g.neighbors_;
  }
  static Graph MakeGraph(std::vector<size_t> offsets,
                         std::vector<VertexId> neighbors) {
    Graph g;
    g.offsets_ = std::move(offsets);
    g.neighbors_ = std::move(neighbors);
    return g;
  }

  // ---- Ontology ----
  static const Ontology& O(const Ontology& o) { return o; }
  static Ontology MakeOntology(
      std::vector<std::string> names, std::vector<size_t> parent_offsets,
      std::vector<TermId> parents_flat,
      std::vector<RelationType> parent_relations_flat,
      std::vector<size_t> child_offsets, std::vector<TermId> children_flat,
      std::vector<TermId> roots, std::vector<TermId> topo_order,
      std::vector<size_t> ancestor_offsets, std::vector<TermId> ancestors_flat,
      std::vector<uint32_t> depths) {
    Ontology o;
    o.names_ = std::move(names);
    o.parent_offsets_ = std::move(parent_offsets);
    o.parents_flat_ = std::move(parents_flat);
    o.parent_relations_flat_ = std::move(parent_relations_flat);
    o.child_offsets_ = std::move(child_offsets);
    o.children_flat_ = std::move(children_flat);
    o.roots_ = std::move(roots);
    o.topo_order_ = std::move(topo_order);
    o.ancestor_offsets_ = std::move(ancestor_offsets);
    o.ancestors_flat_ = std::move(ancestors_flat);
    o.depths_ = std::move(depths);
    return o;
  }
  static const std::vector<std::string>& Names(const Ontology& o) {
    return o.names_;
  }
  static const std::vector<size_t>& ParentOffsets(const Ontology& o) {
    return o.parent_offsets_;
  }
  static const std::vector<TermId>& ParentsFlat(const Ontology& o) {
    return o.parents_flat_;
  }
  static const std::vector<RelationType>& ParentRelationsFlat(
      const Ontology& o) {
    return o.parent_relations_flat_;
  }
  static const std::vector<size_t>& ChildOffsets(const Ontology& o) {
    return o.child_offsets_;
  }
  static const std::vector<TermId>& ChildrenFlat(const Ontology& o) {
    return o.children_flat_;
  }
  static const std::vector<TermId>& Roots(const Ontology& o) {
    return o.roots_;
  }
  static const std::vector<TermId>& TopoOrder(const Ontology& o) {
    return o.topo_order_;
  }
  static const std::vector<size_t>& AncestorOffsets(const Ontology& o) {
    return o.ancestor_offsets_;
  }
  static const std::vector<TermId>& AncestorsFlat(const Ontology& o) {
    return o.ancestors_flat_;
  }
  static const std::vector<uint32_t>& Depths(const Ontology& o) {
    return o.depths_;
  }

  // ---- AnnotationTable ----
  static const std::vector<std::vector<TermId>>& Annotations(
      const AnnotationTable& a) {
    return a.annotations_;
  }
  static AnnotationTable MakeAnnotations(
      std::vector<std::vector<TermId>> annotations) {
    AnnotationTable a;
    a.annotations_ = std::move(annotations);
    return a;
  }

  // ---- TermWeights ----
  static const std::vector<double>& Weights(const TermWeights& w) {
    return w.weights_;
  }
  static const std::vector<double>& LogWeights(const TermWeights& w) {
    return w.log_weights_;
  }
  static TermWeights MakeWeights(std::vector<double> weights,
                                 std::vector<double> log_weights) {
    TermWeights w;
    w.weights_ = std::move(weights);
    w.log_weights_ = std::move(log_weights);
    return w;
  }

  // ---- InformativeClasses ----
  static const std::vector<bool>& Informative(const InformativeClasses& c) {
    return c.informative_;
  }
  static const std::vector<bool>& Border(const InformativeClasses& c) {
    return c.border_;
  }
  static const std::vector<bool>& Candidate(const InformativeClasses& c) {
    return c.candidate_;
  }
  static const std::vector<TermId>& InformativeTerms(
      const InformativeClasses& c) {
    return c.informative_terms_;
  }
  static const std::vector<TermId>& BorderTerms(const InformativeClasses& c) {
    return c.border_terms_;
  }
  static InformativeClasses MakeInformative(std::vector<bool> informative,
                                            std::vector<bool> border,
                                            std::vector<bool> candidate,
                                            std::vector<TermId> info_terms,
                                            std::vector<TermId> border_terms) {
    InformativeClasses c;
    c.informative_ = std::move(informative);
    c.border_ = std::move(border);
    c.candidate_ = std::move(candidate);
    c.informative_terms_ = std::move(info_terms);
    c.border_terms_ = std::move(border_terms);
    return c;
  }
};

namespace {

// ---- encoding primitives (little-endian, fixed width) ----------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutU8Vec(std::string* out, const std::vector<uint8_t>& v) {
  PutU64(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()), v.size());
}

void PutU32Vec(std::string* out, const std::vector<uint32_t>& v) {
  PutU64(out, v.size());
  for (uint32_t x : v) PutU32(out, x);
}

void PutSizeVec(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t x : v) PutU64(out, x);
}

void PutU64Vec(std::string* out, const std::vector<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

void PutDoubleVec(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double x : v) PutDouble(out, x);
}

void PutBoolVec(std::string* out, const std::vector<bool>& v) {
  PutU64(out, v.size());
  for (bool b : v) PutU8(out, b ? 1 : 0);
}

// FNV-1a 64-bit over the document body; stored as the trailing 8 bytes.
uint64_t Checksum(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- bounds-checked decoding cursor ----------------------------------------

// Reads primitives sequentially; the first short read or failed validation
// latches an error message and makes every subsequent read a cheap no-op, so
// decode code can run straight-line and check once at the end.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  size_t remaining() const { return size_ - pos_; }

  void Fail(const std::string& message) {
    if (!ok_) return;
    ok_ = false;
    error_ = message + " at offset " + std::to_string(pos_);
  }

  uint8_t GetU8() {
    if (!Need(1, "u8")) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Need(4, "u32")) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8, "u64")) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double GetDouble() { return std::bit_cast<double>(GetU64()); }

  std::string GetString() {
    const uint32_t n = GetU32();
    if (!Need(n, "string body")) return {};
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  // Element counts are validated against the remaining bytes *before*
  // allocation, so a corrupt length cannot trigger a huge allocation.
  size_t GetCount(size_t element_bytes, const char* what) {
    const uint64_t n = GetU64();
    if (!ok_) return 0;
    if (element_bytes != 0 && n > remaining() / element_bytes) {
      Fail(std::string("implausible ") + what + " count " + std::to_string(n));
      return 0;
    }
    return static_cast<size_t>(n);
  }

  std::vector<uint8_t> GetU8Vec(const char* what) {
    const size_t n = GetCount(1, what);
    std::vector<uint8_t> v;
    if (!ok_ || !Need(n, what)) return v;
    v.assign(reinterpret_cast<const uint8_t*>(data_) + pos_,
             reinterpret_cast<const uint8_t*>(data_) + pos_ + n);
    pos_ += n;
    return v;
  }

  std::vector<uint32_t> GetU32Vec(const char* what) {
    const size_t n = GetCount(4, what);
    std::vector<uint32_t> v;
    if (!ok_) return v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok_; ++i) v.push_back(GetU32());
    return v;
  }

  std::vector<size_t> GetSizeVec(const char* what) {
    const size_t n = GetCount(8, what);
    std::vector<size_t> v;
    if (!ok_) return v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok_; ++i) {
      v.push_back(static_cast<size_t>(GetU64()));
    }
    return v;
  }

  std::vector<uint64_t> GetU64Vec(const char* what) {
    const size_t n = GetCount(8, what);
    std::vector<uint64_t> v;
    if (!ok_) return v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok_; ++i) v.push_back(GetU64());
    return v;
  }

  std::vector<double> GetDoubleVec(const char* what) {
    const size_t n = GetCount(8, what);
    std::vector<double> v;
    if (!ok_) return v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok_; ++i) v.push_back(GetDouble());
    return v;
  }

  std::vector<bool> GetBoolVec(const char* what) {
    const size_t n = GetCount(1, what);
    std::vector<bool> v;
    if (!ok_) return v;
    v.reserve(n);
    for (size_t i = 0; i < n && ok_; ++i) v.push_back(GetU8() != 0);
    return v;
  }

 private:
  bool Need(size_t n, const char* what) {
    if (!ok_) return false;
    if (n > remaining()) {
      Fail(std::string("truncated ") + what);
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---- structural validation -------------------------------------------------

// Offsets arrays must be monotone with exactly `flat` total entries — the
// span accessors index them unchecked, so a checksum-valid but inconsistent
// file must be rejected here rather than crash later.
bool OffsetsValid(const std::vector<size_t>& offsets, size_t n, size_t flat) {
  if (offsets.size() != n + 1) return false;
  if (offsets.front() != 0 || offsets.back() != flat) return false;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  return true;
}

bool IdsBelow(const std::vector<uint32_t>& ids, size_t limit) {
  return std::all_of(ids.begin(), ids.end(),
                     [limit](uint32_t id) { return id < limit; });
}

}  // namespace

Snapshot BuildSnapshot(Graph graph, Ontology ontology,
                       AnnotationTable annotations,
                       std::vector<LabeledMotif> motifs,
                       const InformativeConfig& informative_config) {
  Snapshot snap;
  snap.graph = std::move(graph);
  snap.ontology = std::move(ontology);
  snap.annotations = std::move(annotations);
  snap.motifs = std::move(motifs);
  snap.weights = TermWeights::Compute(snap.ontology, snap.annotations);
  snap.informative = InformativeClasses::Compute(
      snap.ontology, snap.annotations, informative_config);

  // Per-protein site index: identical construction (and therefore identical
  // first-seen order) to LabeledMotifPredictor's.
  snap.sites.resize(snap.graph.num_vertices());
  for (uint32_t mi = 0; mi < snap.motifs.size(); ++mi) {
    for (const MotifOccurrence& occ : snap.motifs[mi].occurrences) {
      for (uint32_t pos = 0; pos < occ.proteins.size(); ++pos) {
        auto& sites = snap.sites[occ.proteins[pos]];
        const SnapshotSite site{mi, pos};
        if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
          sites.push_back(site);
        }
      }
    }
  }

  // Predictor section: the non-default backends' precomputed inputs. Both
  // computations are deterministic, so serving from these matrices answers
  // byte-identically to an offline `lamo predict` recompute.
  snap.gds_signatures = ComputeGdsSignatures(snap.graph);
  snap.role_dim = static_cast<uint32_t>(kRoleIterations);
  snap.role_vectors = ComputeRoleVectors(snap.graph);

  // Prediction context: categories are the first root's children; protein
  // categories via the true path — the same derivation `lamo predict` runs.
  const TermId root = snap.ontology.Roots()[0];
  snap.categories.assign(snap.ontology.Children(root).begin(),
                         snap.ontology.Children(root).end());
  snap.protein_categories.resize(snap.graph.num_vertices());
  for (ProteinId p = 0; p < snap.graph.num_vertices(); ++p) {
    std::vector<TermId>& cats = snap.protein_categories[p];
    for (TermId t : snap.annotations.TermsOf(p)) {
      for (TermId c : snap.categories) {
        if (snap.ontology.IsAncestorOrEqual(c, t)) {
          if (!std::binary_search(cats.begin(), cats.end(), c)) {
            cats.insert(std::lower_bound(cats.begin(), cats.end(), c), c);
          }
        }
      }
    }
  }
  return snap;
}

std::string ShardSnapshotPath(const std::string& base, uint32_t shard_id,
                              uint32_t num_shards) {
  return base + ".shard" + std::to_string(shard_id) + "of" +
         std::to_string(num_shards);
}

Snapshot MakeShard(const Snapshot& full, uint32_t shard_id,
                   uint32_t num_shards) {
  Snapshot shard = full;
  shard.num_shards = num_shards;
  shard.shard_id = shard_id;
  if (num_shards <= 1) return shard;
  // Keep exactly the occurrences that involve an owned protein: the
  // predictor index a backend rebuilds from them lists, for every owned
  // protein, the same (motif, vertex) sites in the same first-seen order as
  // the full snapshot, so served answers cannot drift. Stored frequency,
  // uniqueness and strength are untouched — they describe the whole
  // interactome, not the shard.
  for (LabeledMotif& motif : shard.motifs) {
    std::vector<MotifOccurrence> kept;
    kept.reserve(motif.occurrences.size());
    for (MotifOccurrence& occ : motif.occurrences) {
      const bool owned =
          std::any_of(occ.proteins.begin(), occ.proteins.end(),
                      [&shard](VertexId p) { return shard.OwnsProtein(p); });
      if (owned) kept.push_back(std::move(occ));
    }
    motif.occurrences = std::move(kept);
  }
  for (uint32_t p = 0; p < shard.sites.size(); ++p) {
    if (!shard.OwnsProtein(p)) {
      shard.sites[p].clear();
      shard.sites[p].shrink_to_fit();
    }
  }
  return shard;
}

std::string EncodeSnapshot(const Snapshot& snap) {
  LAMO_CHECK(snap.version >= kMinSnapshotVersion &&
             snap.version <= kSnapshotVersion)
      << "unencodable snapshot version " << snap.version;
  std::string out;
  out.append(kSnapshotMagic, sizeof kSnapshotMagic);
  PutU32(&out, snap.version);

  // -- shard section --
  PutU32(&out, snap.num_shards);
  PutU32(&out, snap.shard_id);

  // -- graph (CSR) --
  PutSizeVec(&out, SnapshotAccess::GraphOffsets(snap.graph));
  PutU32Vec(&out, SnapshotAccess::GraphNeighbors(snap.graph));

  // -- ontology --
  const Ontology& o = snap.ontology;
  PutU64(&out, SnapshotAccess::Names(o).size());
  for (const std::string& name : SnapshotAccess::Names(o)) {
    PutString(&out, name);
  }
  PutSizeVec(&out, SnapshotAccess::ParentOffsets(o));
  PutU32Vec(&out, SnapshotAccess::ParentsFlat(o));
  PutU64(&out, SnapshotAccess::ParentRelationsFlat(o).size());
  for (RelationType r : SnapshotAccess::ParentRelationsFlat(o)) {
    PutU8(&out, static_cast<uint8_t>(r));
  }
  PutSizeVec(&out, SnapshotAccess::ChildOffsets(o));
  PutU32Vec(&out, SnapshotAccess::ChildrenFlat(o));
  PutU32Vec(&out, SnapshotAccess::Roots(o));
  PutU32Vec(&out, SnapshotAccess::TopoOrder(o));
  PutSizeVec(&out, SnapshotAccess::AncestorOffsets(o));
  PutU32Vec(&out, SnapshotAccess::AncestorsFlat(o));
  PutU32Vec(&out, SnapshotAccess::Depths(o));

  // -- annotations --
  const auto& annotations = SnapshotAccess::Annotations(snap.annotations);
  PutU64(&out, annotations.size());
  for (const std::vector<TermId>& terms : annotations) {
    PutU32Vec(&out, terms);
  }

  // -- term weights --
  PutDoubleVec(&out, SnapshotAccess::Weights(snap.weights));
  PutDoubleVec(&out, SnapshotAccess::LogWeights(snap.weights));

  // -- informative classes --
  PutBoolVec(&out, SnapshotAccess::Informative(snap.informative));
  PutBoolVec(&out, SnapshotAccess::Border(snap.informative));
  PutBoolVec(&out, SnapshotAccess::Candidate(snap.informative));
  PutU32Vec(&out, SnapshotAccess::InformativeTerms(snap.informative));
  PutU32Vec(&out, SnapshotAccess::BorderTerms(snap.informative));

  // -- labeled motifs --
  PutU64(&out, snap.motifs.size());
  for (const LabeledMotif& m : snap.motifs) {
    const size_t n = m.pattern.num_vertices();
    PutU8(&out, static_cast<uint8_t>(n));
    const auto edges = m.pattern.Edges();
    PutU64(&out, edges.size());
    for (const auto& [a, b] : edges) {
      PutU8(&out, static_cast<uint8_t>(a));
      PutU8(&out, static_cast<uint8_t>(b));
    }
    PutU8Vec(&out, m.code);
    for (size_t v = 0; v < n; ++v) PutU32Vec(&out, m.scheme[v]);
    PutU64(&out, m.occurrences.size());
    for (const MotifOccurrence& occ : m.occurrences) {
      for (VertexId p : occ.proteins) PutU32(&out, p);
    }
    PutU64(&out, m.frequency);
    PutDouble(&out, m.uniqueness);
    PutDouble(&out, m.strength);
  }

  // -- per-protein site index --
  PutU64(&out, snap.sites.size());
  for (const std::vector<SnapshotSite>& sites : snap.sites) {
    PutU64(&out, sites.size());
    for (const SnapshotSite& site : sites) {
      PutU32(&out, site.motif);
      PutU32(&out, site.vertex);
    }
  }

  // -- prediction context --
  PutU32Vec(&out, snap.categories);
  PutU64(&out, snap.protein_categories.size());
  for (const std::vector<TermId>& cats : snap.protein_categories) {
    PutU32Vec(&out, cats);
  }

  // -- predictor section (version 3) --
  if (snap.version >= 3) {
    PutU64Vec(&out, snap.gds_signatures);
    PutU32(&out, snap.role_dim);
    PutDoubleVec(&out, snap.role_vectors);
  }

  PutU64(&out, Checksum(out.data(), out.size()));
  return out;
}

StatusOr<Snapshot> DecodeSnapshot(const std::string& bytes) {
  constexpr size_t kHeaderBytes = sizeof kSnapshotMagic + 4;
  if (bytes.size() < kHeaderBytes + 8) {
    return Status::Corruption("snapshot too short (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return Status::Corruption("bad snapshot magic (not a .lamosnap file)");
  }
  const size_t body = bytes.size() - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[body + i]))
              << (8 * i);
  }
  const uint64_t actual = Checksum(bytes.data(), body);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "snapshot checksum mismatch (stored %016llx, computed "
                  "%016llx)",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(actual));
    return Status::Corruption(msg);
  }

  Cursor in(bytes.data(), body);
  in.GetU8();  // magic, already validated
  for (size_t i = 1; i < sizeof kSnapshotMagic; ++i) in.GetU8();
  const uint32_t version = in.GetU32();
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kMinSnapshotVersion) +
        ".." + std::to_string(kSnapshotVersion) + ")");
  }

  Snapshot snap;
  snap.checksum = actual;
  snap.version = version;

  // -- shard section --
  snap.num_shards = in.GetU32();
  snap.shard_id = in.GetU32();
  if (in.ok() && (snap.num_shards == 0 || snap.shard_id >= snap.num_shards)) {
    in.Fail("invalid shard section (shard " + std::to_string(snap.shard_id) +
            " of " + std::to_string(snap.num_shards) + ")");
  }

  // -- graph --
  auto graph_offsets = in.GetSizeVec("graph offsets");
  auto graph_neighbors = in.GetU32Vec("graph neighbors");
  if (in.ok()) {
    if (graph_offsets.empty() ||
        !OffsetsValid(graph_offsets, graph_offsets.size() - 1,
                      graph_neighbors.size()) ||
        !IdsBelow(graph_neighbors, graph_offsets.size() - 1)) {
      in.Fail("inconsistent graph CSR");
    }
  }
  snap.graph = SnapshotAccess::MakeGraph(std::move(graph_offsets),
                                         std::move(graph_neighbors));
  const size_t num_proteins = snap.graph.num_vertices();

  // -- ontology --
  const size_t num_terms = in.GetCount(4, "term name");
  std::vector<std::string> names;
  names.reserve(in.ok() ? num_terms : 0);
  for (size_t i = 0; i < num_terms && in.ok(); ++i) {
    names.push_back(in.GetString());
  }
  auto parent_offsets = in.GetSizeVec("parent offsets");
  auto parents_flat = in.GetU32Vec("parents");
  const size_t num_relations = in.GetCount(1, "parent relation");
  std::vector<RelationType> parent_relations;
  parent_relations.reserve(in.ok() ? num_relations : 0);
  for (size_t i = 0; i < num_relations && in.ok(); ++i) {
    const uint8_t r = in.GetU8();
    if (r > static_cast<uint8_t>(RelationType::kPartOf)) {
      in.Fail("invalid relation type");
      break;
    }
    parent_relations.push_back(static_cast<RelationType>(r));
  }
  auto child_offsets = in.GetSizeVec("child offsets");
  auto children_flat = in.GetU32Vec("children");
  auto roots = in.GetU32Vec("roots");
  auto topo_order = in.GetU32Vec("topo order");
  auto ancestor_offsets = in.GetSizeVec("ancestor offsets");
  auto ancestors_flat = in.GetU32Vec("ancestors");
  auto depths = in.GetU32Vec("depths");
  if (in.ok()) {
    const bool valid =
        OffsetsValid(parent_offsets, num_terms, parents_flat.size()) &&
        parent_relations.size() == parents_flat.size() &&
        OffsetsValid(child_offsets, num_terms, children_flat.size()) &&
        OffsetsValid(ancestor_offsets, num_terms, ancestors_flat.size()) &&
        IdsBelow(parents_flat, num_terms) &&
        IdsBelow(children_flat, num_terms) && IdsBelow(roots, num_terms) &&
        IdsBelow(ancestors_flat, num_terms) &&
        topo_order.size() == num_terms && IdsBelow(topo_order, num_terms) &&
        depths.size() == num_terms && !roots.empty();
    if (!valid) in.Fail("inconsistent ontology tables");
  }
  snap.ontology = SnapshotAccess::MakeOntology(
      std::move(names), std::move(parent_offsets), std::move(parents_flat),
      std::move(parent_relations), std::move(child_offsets),
      std::move(children_flat), std::move(roots), std::move(topo_order),
      std::move(ancestor_offsets), std::move(ancestors_flat),
      std::move(depths));

  // -- annotations --
  const size_t annotated = in.GetCount(8, "annotation row");
  if (in.ok() && annotated != num_proteins) {
    in.Fail("annotation table size does not match the graph");
  }
  std::vector<std::vector<TermId>> annotations(in.ok() ? annotated : 0);
  for (size_t p = 0; p < annotations.size() && in.ok(); ++p) {
    annotations[p] = in.GetU32Vec("annotation terms");
    if (in.ok() && !IdsBelow(annotations[p], num_terms)) {
      in.Fail("annotation term out of range");
    }
  }
  snap.annotations = SnapshotAccess::MakeAnnotations(std::move(annotations));

  // -- term weights --
  auto weights = in.GetDoubleVec("weights");
  auto log_weights = in.GetDoubleVec("log weights");
  if (in.ok() &&
      (weights.size() != num_terms || log_weights.size() != num_terms)) {
    in.Fail("weight table size does not match the ontology");
  }
  snap.weights =
      SnapshotAccess::MakeWeights(std::move(weights), std::move(log_weights));

  // -- informative classes --
  auto informative = in.GetBoolVec("informative flags");
  auto border = in.GetBoolVec("border flags");
  auto candidate = in.GetBoolVec("candidate flags");
  auto informative_terms = in.GetU32Vec("informative terms");
  auto border_terms = in.GetU32Vec("border terms");
  if (in.ok()) {
    const bool valid = informative.size() == num_terms &&
                       border.size() == num_terms &&
                       candidate.size() == num_terms &&
                       IdsBelow(informative_terms, num_terms) &&
                       IdsBelow(border_terms, num_terms);
    if (!valid) in.Fail("inconsistent informative-class tables");
  }
  snap.informative = SnapshotAccess::MakeInformative(
      std::move(informative), std::move(border), std::move(candidate),
      std::move(informative_terms), std::move(border_terms));

  // -- labeled motifs --
  const size_t num_motifs = in.GetCount(8, "motif");
  snap.motifs.resize(in.ok() ? num_motifs : 0);
  for (size_t mi = 0; mi < snap.motifs.size() && in.ok(); ++mi) {
    LabeledMotif& m = snap.motifs[mi];
    const size_t n = in.GetU8();
    if (in.ok() && (n == 0 || n > SmallGraph::kMaxVertices)) {
      in.Fail("motif size out of range");
      break;
    }
    m.pattern = SmallGraph(n);
    const size_t num_edges = in.GetCount(2, "motif edge");
    for (size_t e = 0; e < num_edges && in.ok(); ++e) {
      const uint8_t a = in.GetU8();
      const uint8_t b = in.GetU8();
      if (a >= n || b >= n || a == b) {
        in.Fail("motif edge out of range");
        break;
      }
      m.pattern.AddEdge(a, b);
    }
    m.code = in.GetU8Vec("motif code");
    m.scheme.resize(n);
    for (size_t v = 0; v < n && in.ok(); ++v) {
      m.scheme[v] = in.GetU32Vec("scheme labels");
      if (in.ok() && !IdsBelow(m.scheme[v], num_terms)) {
        in.Fail("scheme label out of range");
      }
    }
    const size_t num_occurrences = in.GetCount(4 * n, "occurrence");
    m.occurrences.resize(in.ok() ? num_occurrences : 0);
    for (MotifOccurrence& occ : m.occurrences) {
      if (!in.ok()) break;
      occ.proteins.resize(n);
      for (size_t v = 0; v < n; ++v) {
        occ.proteins[v] = in.GetU32();
        if (in.ok() && occ.proteins[v] >= num_proteins) {
          in.Fail("occurrence protein out of range");
          break;
        }
      }
    }
    m.frequency = static_cast<size_t>(in.GetU64());
    m.uniqueness = in.GetDouble();
    m.strength = in.GetDouble();
  }

  // -- per-protein site index --
  const size_t num_site_rows = in.GetCount(8, "site row");
  if (in.ok() && num_site_rows != num_proteins) {
    in.Fail("site index size does not match the graph");
  }
  snap.sites.resize(in.ok() ? num_site_rows : 0);
  for (size_t p = 0; p < snap.sites.size() && in.ok(); ++p) {
    const size_t count = in.GetCount(8, "site");
    snap.sites[p].resize(in.ok() ? count : 0);
    for (SnapshotSite& site : snap.sites[p]) {
      if (!in.ok()) break;
      site.motif = in.GetU32();
      site.vertex = in.GetU32();
      if (in.ok() && (site.motif >= snap.motifs.size() ||
                      site.vertex >= snap.motifs[site.motif].size())) {
        in.Fail("site index out of range");
      }
    }
  }

  // -- prediction context --
  snap.categories = in.GetU32Vec("categories");
  if (in.ok() && !IdsBelow(snap.categories, num_terms)) {
    in.Fail("category out of range");
  }
  const size_t num_cat_rows = in.GetCount(8, "category row");
  if (in.ok() && num_cat_rows != num_proteins) {
    in.Fail("protein-category table size does not match the graph");
  }
  snap.protein_categories.resize(in.ok() ? num_cat_rows : 0);
  for (size_t p = 0; p < snap.protein_categories.size() && in.ok(); ++p) {
    snap.protein_categories[p] = in.GetU32Vec("protein categories");
    if (in.ok() && !IdsBelow(snap.protein_categories[p], num_terms)) {
      in.Fail("protein category out of range");
    }
  }

  // -- predictor section (version 3; absent in version 2 files) --
  if (version >= 3) {
    snap.gds_signatures = in.GetU64Vec("gds signatures");
    if (in.ok() && snap.gds_signatures.size() != num_proteins * kGdsOrbits) {
      in.Fail("GDS signature matrix size does not match the graph");
    }
    snap.role_dim = in.GetU32();
    snap.role_vectors = in.GetDoubleVec("role vectors");
    if (in.ok() && (snap.role_dim == 0 ||
                    snap.role_vectors.size() !=
                        num_proteins * static_cast<size_t>(snap.role_dim))) {
      in.Fail("role vector matrix size does not match the graph");
    }
  }

  if (!in.ok()) return Status::Corruption("snapshot decode: " + in.error());
  if (in.remaining() != 0) {
    return Status::Corruption("snapshot has " +
                              std::to_string(in.remaining()) +
                              " trailing bytes before the checksum");
  }
  return snap;
}

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path) {
  // Atomic replace: a serving process may re-load this path at any moment,
  // so it must never observe a half-written snapshot.
  return WriteFileAtomic(path, EncodeSnapshot(snapshot));
}

StatusOr<Snapshot> ReadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string bytes;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read error on " + path);
  auto snapshot = DecodeSnapshot(bytes);
  if (!snapshot.ok()) {
    return Status(snapshot.status().code() == StatusCode::kInvalidArgument
                      ? Status::InvalidArgument(path + ": " +
                                                snapshot.status().message())
                      : Status::Corruption(path + ": " +
                                           snapshot.status().message()));
  }
  snapshot->source_path = path;
  return snapshot;
}

}  // namespace lamo
