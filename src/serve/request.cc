#include "serve/request.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace lamo {
namespace {

// Tokenizes on runs of spaces/tabs, dropping empties.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status BadArity(const char* verb, const char* expected) {
  return Status::InvalidArgument(std::string(verb) + " expects " + expected);
}

}  // namespace

StatusOr<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  if (tokens[0][0] == '#') {
    uint64_t id = 0;
    if (!ParseUint64(tokens[0].substr(1), &id)) {
      return Status::InvalidArgument("malformed request id \"" + tokens[0] +
                                     "\"");
    }
    request.id = id;
    tokens.erase(tokens.begin());
    if (tokens.empty()) {
      return Status::InvalidArgument("empty request");
    }
  }
  const std::string& verb = tokens[0];
  if (verb == "PREDICT") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      return BadArity("PREDICT", "<protein> [k]");
    }
    uint64_t protein = 0;
    if (!ParseUint64(tokens[1], &protein)) {
      return Status::InvalidArgument("PREDICT: protein must be an integer");
    }
    request.type = RequestType::kPredict;
    request.protein = static_cast<ProteinId>(protein);
    if (tokens.size() == 3) {
      uint64_t k = 0;
      if (!ParseUint64(tokens[2], &k) || k == 0) {
        return Status::InvalidArgument("PREDICT: k must be a positive integer");
      }
      request.top_k = static_cast<size_t>(k);
    }
    return request;
  }
  if (verb == "MOTIFS") {
    if (tokens.size() != 2) return BadArity("MOTIFS", "<protein>");
    uint64_t protein = 0;
    if (!ParseUint64(tokens[1], &protein)) {
      return Status::InvalidArgument("MOTIFS: protein must be an integer");
    }
    request.type = RequestType::kMotifs;
    request.protein = static_cast<ProteinId>(protein);
    return request;
  }
  if (verb == "TERMINFO") {
    if (tokens.size() != 2) return BadArity("TERMINFO", "<term-name>");
    request.type = RequestType::kTermInfo;
    request.term = tokens[1];
    return request;
  }
  if (verb == "HEALTH") {
    if (tokens.size() != 1) return BadArity("HEALTH", "no arguments");
    request.type = RequestType::kHealth;
    return request;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) return BadArity("STATS", "no arguments");
    request.type = RequestType::kStats;
    return request;
  }
  if (verb == "METRICS") {
    if (tokens.size() != 1) return BadArity("METRICS", "no arguments");
    request.type = RequestType::kMetrics;
    return request;
  }
  if (verb == "ADDEDGE" || verb == "DELEDGE" || verb == "PREDICT_EDGE") {
    if (tokens.size() != 3) return BadArity(verb.c_str(), "<u> <v>");
    uint64_t u = 0, v = 0;
    if (!ParseUint64(tokens[1], &u) || !ParseUint64(tokens[2], &v)) {
      return Status::InvalidArgument(verb + ": proteins must be integers");
    }
    request.type = verb == "ADDEDGE"   ? RequestType::kAddEdge
                   : verb == "DELEDGE" ? RequestType::kDelEdge
                                       : RequestType::kPredictEdge;
    request.protein = static_cast<ProteinId>(u);
    request.protein2 = static_cast<ProteinId>(v);
    return request;
  }
  return Status::InvalidArgument("unknown command \"" + verb + "\"");
}

bool IsCacheable(RequestType type) {
  switch (type) {
    case RequestType::kPredict:
    case RequestType::kMotifs:
    case RequestType::kTermInfo:
      return true;
    case RequestType::kHealth:
    case RequestType::kStats:
    case RequestType::kMetrics:
      return false;
    // Mutations are never cacheable; PREDICT_EDGE answers depend on live
    // graph state that updates would have to invalidate pairwise — cheaper
    // to always score (the enumeration is a few hundred local subgraphs).
    case RequestType::kAddEdge:
    case RequestType::kDelEdge:
    case RequestType::kPredictEdge:
      return false;
  }
  return false;
}

std::string CacheKey(const Request& request) {
  switch (request.type) {
    case RequestType::kPredict:
      return "PREDICT " + std::to_string(request.protein) + " " +
             std::to_string(request.top_k);
    case RequestType::kMotifs:
      return "MOTIFS " + std::to_string(request.protein);
    case RequestType::kTermInfo:
      return "TERMINFO " + request.term;
    case RequestType::kHealth:
      return "HEALTH";
    case RequestType::kStats:
      return "STATS";
    case RequestType::kMetrics:
      return "METRICS";
    // Not cacheable, but the canonical render doubles as the line the
    // router forwards to every backend on mutation fan-out.
    case RequestType::kAddEdge:
      return "ADDEDGE " + std::to_string(request.protein) + " " +
             std::to_string(request.protein2);
    case RequestType::kDelEdge:
      return "DELEDGE " + std::to_string(request.protein) + " " +
             std::to_string(request.protein2);
    case RequestType::kPredictEdge:
      return "PREDICT_EDGE " + std::to_string(request.protein) + " " +
             std::to_string(request.protein2);
  }
  return {};
}

std::string FormatOkResponse(const std::vector<std::string>& payload) {
  std::string out = "OK " + std::to_string(payload.size()) + "\n";
  for (const std::string& line : payload) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string FormatErrorResponse(const Status& status) {
  std::string message = status.message();
  std::replace(message.begin(), message.end(), '\n', ' ');
  return std::string("ERR ") + StatusCodeName(status.code()) + " " + message +
         "\n";
}

std::vector<std::string> PredictionOutputLines(const PredictionContext& context,
                                               const Ontology& ontology,
                                               const FunctionPredictor& predictor,
                                               ProteinId protein, size_t top_k) {
  std::vector<std::string> lines;
  char buffer[512];
  if (!predictor.Covers(protein)) {
    std::snprintf(buffer, sizeof buffer,
                  "protein %u occurs in no labeled motif; no prediction",
                  protein);
    lines.emplace_back(buffer);
    return lines;
  }
  std::snprintf(buffer, sizeof buffer, "top predictions for protein %u:",
                protein);
  lines.emplace_back(buffer);
  const auto predictions = predictor.Predict(protein);
  for (size_t i = 0; i < std::min(top_k, predictions.size()); ++i) {
    std::snprintf(buffer, sizeof buffer, "  %zu. %s (score %.3f)%s", i + 1,
                  ontology.TermName(predictions[i].category).c_str(),
                  predictions[i].score,
                  context.HasCategory(protein, predictions[i].category)
                      ? "  [matches known annotation]"
                      : "");
    lines.emplace_back(buffer);
  }
  return lines;
}

}  // namespace lamo
