#include "serve/update.h"

#include <algorithm>
#include <set>

#include "motif/delta_esu.h"
#include "obs/obs.h"
#include "predict/gds.h"
#include "predict/role_similarity.h"

namespace lamo {
namespace {

// Same id as the miner's counter on purpose: re-enumerated delta sets are
// ESU subgraph visits, so serve-side reports satisfy
// update.resubgraphs <= esu.subgraphs without a parallel counter family.
const size_t kObsEsuSubgraphs = ObsCounterId("esu.subgraphs");

std::string CodeKey(const std::vector<uint8_t>& code) {
  return std::string(code.begin(), code.end());
}

// The occurrence aligned the way the mining pipeline aligns emissions:
// canonical position i holds the canonical_to_original[i]-th smallest
// vertex of the set.
MotifOccurrence AlignedOccurrence(const std::vector<VertexId>& verts,
                                  const CanonicalResult& canon) {
  MotifOccurrence occ;
  occ.proteins.resize(verts.size());
  for (size_t i = 0; i < verts.size(); ++i) {
    occ.proteins[i] = verts[canon.canonical_to_original[i]];
  }
  return occ;
}

bool SameVertexSet(const std::vector<VertexId>& sorted_verts,
                   const std::vector<VertexId>& proteins) {
  if (sorted_verts.size() != proteins.size()) return false;
  std::vector<VertexId> sorted = proteins;
  std::sort(sorted.begin(), sorted.end());
  return sorted == sorted_verts;
}

}  // namespace

UpdateEngine::UpdateEngine(Snapshot* snapshot)
    : snap_(snapshot),
      graph_(snapshot->graph),
      finder_(snapshot->ontology, snapshot->weights, snapshot->informative,
              snapshot->annotations) {
  for (uint32_t mi = 0; mi < snap_->motifs.size(); ++mi) {
    const LabeledMotif& m = snap_->motifs[mi];
    motifs_by_code_[m.size()][CodeKey(m.code)].push_back(mi);
  }
}

SharedCanonCache& UpdateEngine::CacheFor(size_t k) {
  auto it = caches_.find(k);
  if (it == caches_.end()) {
    it = caches_.emplace(k, std::make_unique<SharedCanonCache>(k)).first;
  }
  return *it->second;
}

std::vector<size_t> UpdateEngine::UpdateSizes() const {
  std::set<size_t> sizes;
  for (const auto& [size, codes] : motifs_by_code_) sizes.insert(size);
  if (!snap_->gds_signatures.empty()) {
    for (size_t k = 2; k <= 5; ++k) sizes.insert(k);
  }
  std::vector<size_t> out;
  for (const size_t k : sizes) {
    if (k >= 2 && k <= GraphIndex::kMaxInducedBitsVertices &&
        k <= graph_.num_vertices()) {
      out.push_back(k);
    }
  }
  return out;
}

Status UpdateEngine::Check(bool add, VertexId u, VertexId v) const {
  const size_t n = graph_.num_vertices();
  if (u >= n || v >= n) {
    return Status::InvalidArgument(
        "edge endpoint out of range: {" + std::to_string(u) + ", " +
        std::to_string(v) + "} on " + std::to_string(n) + " proteins");
  }
  if (u == v) {
    return Status::InvalidArgument("self-interaction {" + std::to_string(u) +
                                   ", " + std::to_string(u) + "} rejected");
  }
  if (add && graph_.HasEdge(u, v)) {
    return Status::AlreadyExists("edge {" + std::to_string(u) + ", " +
                                 std::to_string(v) + "} already present");
  }
  if (!add && !graph_.HasEdge(u, v)) {
    return Status::NotFound("edge {" + std::to_string(u) + ", " +
                            std::to_string(v) + "} does not exist");
  }
  return Status::OK();
}

Status UpdateEngine::Apply(bool add, VertexId u, VertexId v,
                           UpdateResult* result) {
  Status check = Check(add, u, v);
  if (!check.ok()) return check;
  *result = UpdateResult{};
  result->add = add;
  result->u = u;
  result->v = v;

  // Enumerate on the graph WITH the edge: for additions insert it first,
  // for deletions keep it until after the enumeration. One pass classifies
  // both directions — every delta set's pattern with the edge (bits_with)
  // and without it (bits_without, valid when still connected).
  if (add) {
    Status st = graph_.AddEdge(u, v);
    if (!st.ok()) return st;
  }

  const bool track_gds = !snap_->gds_signatures.empty();
  std::set<VertexId> affected = {u, v};
  std::map<uint32_t, int64_t> freq_delta;

  for (const size_t k : UpdateSizes()) {
    const GraphIndex& index = graph_.index();
    std::vector<PairSubgraph> subs;
    EnumeratePairSubgraphs(index, u, v, k, &subs);
    result->resubgraphs += subs.size();
    ObsAdd(kObsEsuSubgraphs, subs.size());

    if (track_gds && k <= 5) {
      // Each delta set gains/loses its with-edge orbit contribution and
      // loses/gains its without-edge one — sets not containing both
      // endpoints keep their induced adjacency, so this patch is exact.
      const GdsOrbitTable& orbits = GdsOrbitTable::Get();
      const uint64_t sign = add ? uint64_t{1} : ~uint64_t{0};  // +1 / -1
      for (const PairSubgraph& ps : subs) {
        result->signatures_changed = true;
        const uint8_t* with =
            orbits.OrbitsOfMask(k, static_cast<uint32_t>(ps.bits_with));
        for (size_t i = 0; i < k; ++i) {
          snap_->gds_signatures[ps.verts[i] * kGdsOrbits + with[i]] += sign;
        }
        if (ps.connected_without) {
          const uint8_t* without =
              orbits.OrbitsOfMask(k, static_cast<uint32_t>(ps.bits_without));
          for (size_t i = 0; i < k; ++i) {
            snap_->gds_signatures[ps.verts[i] * kGdsOrbits + without[i]] -=
                sign;
          }
        }
      }
    }

    const auto by_code = motifs_by_code_.find(k);
    if (by_code == motifs_by_code_.end()) continue;
    SharedCanonCache& cache = CacheFor(k);

    for (const PairSubgraph& ps : subs) {
      // Pattern transition of this vertex set. The edge changes the edge
      // count, so before != after always; "none" marks a disconnected side.
      const CanonicalResult& canon_with = cache.Lookup(ps.bits_with);
      const CanonicalResult* canon_without =
          ps.connected_without ? &cache.Lookup(ps.bits_without) : nullptr;
      const CanonicalResult* before = add ? canon_without : &canon_with;
      const CanonicalResult* after = add ? &canon_with : canon_without;

      if (before != nullptr) {
        const auto mis = by_code->second.find(CodeKey(before->code));
        if (mis != by_code->second.end()) {
          const MotifOccurrence aligned = AlignedOccurrence(ps.verts, *before);
          for (const uint32_t mi : mis->second) {
            LabeledMotif& motif = snap_->motifs[mi];
            // Conformance is label-only, so the verdict is the one the
            // labeling stage reached at pack time: conforming implies the
            // occurrence counts in the (global) frequency.
            const Motif probe{motif.pattern, motif.code, {aligned}, 1, -1.0, {}};
            if (finder_.ConformingOccurrences(probe, motif.scheme).empty()) {
              continue;
            }
            --freq_delta[mi];
            // The stored list holds it only if this shard owns a member.
            for (auto it = motif.occurrences.begin();
                 it != motif.occurrences.end(); ++it) {
              if (SameVertexSet(ps.verts, it->proteins)) {
                for (const VertexId p : it->proteins) affected.insert(p);
                motif.occurrences.erase(it);
                ++result->occ_removed;
                break;
              }
            }
          }
        }
      }
      if (after != nullptr) {
        const auto mis = by_code->second.find(CodeKey(after->code));
        if (mis != by_code->second.end()) {
          const MotifOccurrence aligned = AlignedOccurrence(ps.verts, *after);
          bool owned = snap_->num_shards == 1;
          for (const VertexId p : ps.verts) {
            owned = owned || snap_->OwnsProtein(p);
          }
          for (const uint32_t mi : mis->second) {
            LabeledMotif& motif = snap_->motifs[mi];
            const Motif probe{motif.pattern, motif.code, {aligned}, 1, -1.0, {}};
            const std::vector<MotifOccurrence> conf =
                finder_.ConformingOccurrences(probe, motif.scheme);
            if (conf.empty()) continue;
            ++freq_delta[mi];
            if (owned) {
              // conf.front() carries the scheme alignment LabelAll would
              // have stored — the repack byte-identity depends on it.
              motif.occurrences.push_back(conf.front());
              for (const VertexId p : conf.front().proteins) {
                affected.insert(p);
              }
              ++result->occ_added;
            }
          }
        }
      }
    }
  }

  if (!add) {
    Status st = graph_.RemoveEdge(u, v);
    if (!st.ok()) return st;
  }
  snap_->graph = graph_.graph();

  // Frequencies moved; recompute every LMS strength (normalization is per
  // size class, so one frequency change can shift a whole class). Any motif
  // whose frequency or strength moved changes the MOTIFS/PREDICT answers of
  // every protein siting it.
  std::vector<double> old_strengths(snap_->motifs.size());
  for (size_t mi = 0; mi < snap_->motifs.size(); ++mi) {
    old_strengths[mi] = snap_->motifs[mi].strength;
  }
  std::vector<bool> motif_changed(snap_->motifs.size(), false);
  for (const auto& [mi, delta] : freq_delta) {
    if (delta == 0) continue;
    motif_changed[mi] = true;
    const int64_t next = static_cast<int64_t>(snap_->motifs[mi].frequency) +
                         delta;
    snap_->motifs[mi].frequency = next < 0 ? 0 : static_cast<size_t>(next);
  }
  ComputeMotifStrengths(&snap_->motifs);
  for (size_t mi = 0; mi < snap_->motifs.size(); ++mi) {
    if (snap_->motifs[mi].strength != old_strengths[mi]) {
      motif_changed[mi] = true;
    }
  }

  // Rebuild the site index exactly as BuildSnapshot does (first-seen dedup;
  // shards keep owned rows only), then fold every row that changed — and
  // every row siting a changed motif — into the affected set.
  std::vector<std::vector<SnapshotSite>> sites(snap_->graph.num_vertices());
  for (uint32_t mi = 0; mi < snap_->motifs.size(); ++mi) {
    for (const MotifOccurrence& occ : snap_->motifs[mi].occurrences) {
      for (uint32_t pos = 0; pos < occ.proteins.size(); ++pos) {
        auto& row = sites[occ.proteins[pos]];
        const SnapshotSite site{mi, pos};
        if (std::find(row.begin(), row.end(), site) == row.end()) {
          row.push_back(site);
        }
      }
    }
  }
  if (snap_->num_shards > 1) {
    for (uint32_t p = 0; p < sites.size(); ++p) {
      if (!snap_->OwnsProtein(p)) {
        sites[p].clear();
        sites[p].shrink_to_fit();
      }
    }
  }
  for (uint32_t p = 0; p < sites.size(); ++p) {
    const bool row_changed =
        p < snap_->sites.size() ? sites[p] != snap_->sites[p] : true;
    if (row_changed) {
      affected.insert(p);
      continue;
    }
    for (const SnapshotSite& site : sites[p]) {
      if (motif_changed[site.motif]) {
        affected.insert(p);
        break;
      }
    }
  }
  snap_->sites = std::move(sites);

  // Role vectors: the iteration column-normalizes over all proteins, so one
  // edge perturbs every row — recompute and report whether anything moved.
  if (!snap_->role_vectors.empty()) {
    std::vector<double> roles = ComputeRoleVectors(snap_->graph,
                                                   snap_->role_dim);
    result->roles_changed = roles != snap_->role_vectors;
    snap_->role_vectors = std::move(roles);
  }

  result->affected.assign(affected.begin(), affected.end());
  return Status::OK();
}

Status UpdateEngine::ScoreEdge(VertexId u, VertexId v, EdgeScore* out) {
  Status check = Check(/*add=*/true, u, v);
  if (!check.ok()) return check;
  *out = EdgeScore{};

  // Score on a scratch overlay: insert the candidate edge, count the
  // conforming motif instances it completes, take it back out. The edge
  // changes every delta set's edge count, so each conforming with-edge
  // instance is genuinely new — completed by this candidate.
  Status st = graph_.AddEdge(u, v);
  if (!st.ok()) return st;
  std::map<uint32_t, size_t> completions;
  for (const auto& [k, by_code] : motifs_by_code_) {
    if (k < 2 || k > GraphIndex::kMaxInducedBitsVertices ||
        k > graph_.num_vertices()) {
      continue;
    }
    const GraphIndex& index = graph_.index();
    std::vector<PairSubgraph> subs;
    EnumeratePairSubgraphs(index, u, v, k, &subs);
    ObsAdd(kObsEsuSubgraphs, subs.size());
    SharedCanonCache& cache = CacheFor(k);
    for (const PairSubgraph& ps : subs) {
      const CanonicalResult& canon = cache.Lookup(ps.bits_with);
      const auto mis = by_code.find(CodeKey(canon.code));
      if (mis == by_code.end()) continue;
      const MotifOccurrence aligned = AlignedOccurrence(ps.verts, canon);
      for (const uint32_t mi : mis->second) {
        const LabeledMotif& motif = snap_->motifs[mi];
        const Motif probe{motif.pattern, motif.code, {aligned}, 1, -1.0, {}};
        if (!finder_.ConformingOccurrences(probe, motif.scheme).empty()) {
          ++completions[mi];
        }
      }
    }
  }
  st = graph_.RemoveEdge(u, v);
  if (!st.ok()) return st;

  for (const auto& [mi, count] : completions) {
    out->completions += count;
    out->score += static_cast<double>(count) * snap_->motifs[mi].strength;
    out->per_motif.emplace_back(mi, count);
  }
  return Status::OK();
}

}  // namespace lamo
