#include "motif/miner.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "graph/canonical.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Candidate vertex sets canonicalized per level (after set-level dedup).
const size_t kObsCandidateSets = ObsCounterId("miner.candidate_sets");
/// Extensions dropped because the vertex set was already seen this level.
const size_t kObsDedupHits = ObsCounterId("miner.dedup_hits");
/// Frequent patterns harvested into the result across all levels.
const size_t kObsPatternsEmitted = ObsCounterId("miner.patterns_emitted");
/// Per-level latency: args = (level size being built, patterns entering).
const size_t kHistLevelUs = ObsHistogramId("miner.level_us");
const size_t kSpanLevel = ObsSpanId("miner.level");

struct VertexSetHash {
  size_t operator()(const std::vector<VertexId>& vs) const {
    uint64_t h = 1469598103934665603ULL;
    for (VertexId v : vs) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// In-progress pattern at one level.
struct PatternEntry {
  SmallGraph pattern;  // canonical form
  std::vector<MotifOccurrence> occurrences;
};

// Builds the aligned embedding for vertex set `sorted_set`: canonical motif
// vertex i is played by sorted_set[canonical_to_original[i]].
MotifOccurrence AlignOccurrence(const std::vector<VertexId>& sorted_set,
                                const CanonicalResult& canon) {
  MotifOccurrence occ;
  occ.proteins.resize(sorted_set.size());
  for (size_t i = 0; i < sorted_set.size(); ++i) {
    occ.proteins[i] = sorted_set[canon.canonical_to_original[i]];
  }
  return occ;
}

}  // namespace

FrequentSubgraphMiner::FrequentSubgraphMiner(const Graph& graph,
                                             MinerConfig config)
    : graph_(graph), config_(config) {}

std::vector<Motif> FrequentSubgraphMiner::Mine() {
  LAMO_CHECK_GE(config_.min_size, 2u);
  LAMO_CHECK_GE(config_.max_size, config_.min_size);
  std::vector<Motif> results;

  // Level 2: the single-edge pattern with every edge as an occurrence.
  std::map<std::vector<uint8_t>, PatternEntry> level;
  {
    SmallGraph edge_pattern(2);
    edge_pattern.AddEdge(0, 1);
    PatternEntry entry;
    entry.pattern = edge_pattern;
    for (const auto& [a, b] : graph_.Edges()) {
      entry.occurrences.push_back(MotifOccurrence{{a, b}});
    }
    if (entry.occurrences.size() >= config_.min_frequency) {
      level.emplace(edge_pattern.AdjacencyCode(), std::move(entry));
    }
  }

  auto harvest = [&](const std::map<std::vector<uint8_t>, PatternEntry>& lvl,
                     size_t size) {
    if (size < config_.min_size) return;
    for (const auto& [code, entry] : lvl) {
      Motif motif;
      motif.pattern = entry.pattern;
      motif.code = code;
      motif.occurrences = entry.occurrences;
      motif.frequency = entry.occurrences.size();
      results.push_back(std::move(motif));
      ObsIncrement(kObsPatternsEmitted);
    }
  };
  harvest(level, 2);

  for (size_t size = 2; size < config_.max_size && !level.empty(); ++size) {
    const ScopedItemTimer level_timer(kSpanLevel, kHistLevelUs, size + 1,
                                      level.size(), 2);
    std::map<std::vector<uint8_t>, PatternEntry> next;
    // A vertex set is processed at most once per level, no matter how many
    // parent occurrences can reach it.
    std::unordered_set<std::vector<VertexId>, VertexSetHash> seen_sets;

    for (const auto& [code, entry] : level) {
      (void)code;
      for (const MotifOccurrence& occ : entry.occurrences) {
        // Candidate extensions: neighbors of any occurrence vertex.
        for (VertexId v : occ.proteins) {
          for (VertexId w : graph_.Neighbors(v)) {
            if (std::find(occ.proteins.begin(), occ.proteins.end(), w) !=
                occ.proteins.end()) {
              continue;
            }
            std::vector<VertexId> extended = occ.proteins;
            extended.push_back(w);
            std::sort(extended.begin(), extended.end());
            if (!seen_sets.insert(extended).second) {
              ObsIncrement(kObsDedupHits);
              continue;
            }

            ObsIncrement(kObsCandidateSets);
            const SmallGraph induced =
                SmallGraph::InducedSubgraph(graph_, extended);
            const CanonicalResult canon = Canonicalize(induced);
            auto [it, inserted] = next.try_emplace(canon.code);
            PatternEntry& target = it->second;
            if (inserted) target.pattern = canon.graph;
            if (config_.max_occurrences_per_pattern != 0 &&
                target.occurrences.size() >=
                    config_.max_occurrences_per_pattern) {
              continue;  // frequency becomes a lower bound at the cap
            }
            target.occurrences.push_back(AlignOccurrence(extended, canon));
          }
        }
      }
    }

    // Frequency pruning.
    for (auto it = next.begin(); it != next.end();) {
      if (it->second.occurrences.size() < config_.min_frequency) {
        it = next.erase(it);
      } else {
        ++it;
      }
    }
    // Optional beam.
    if (config_.max_patterns_per_level != 0 &&
        next.size() > config_.max_patterns_per_level) {
      std::vector<std::pair<size_t, std::vector<uint8_t>>> ranked;
      ranked.reserve(next.size());
      for (const auto& [c, e] : next) {
        ranked.emplace_back(e.occurrences.size(), c);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::map<std::vector<uint8_t>, PatternEntry> pruned;
      for (size_t i = 0; i < config_.max_patterns_per_level; ++i) {
        auto node = next.extract(ranked[i].second);
        pruned.insert(std::move(node));
      }
      next = std::move(pruned);
    }

    harvest(next, size + 1);
    level = std::move(next);
    LAMO_LOG(Debug) << "miner level " << (size + 1) << ": " << level.size()
                    << " frequent patterns";
  }
  return results;
}

}  // namespace lamo
