#include "motif/miner.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "graph/canonical.h"
#include "motif/stage_checkpoint.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Candidate vertex sets canonicalized per level (after set-level dedup).
const size_t kObsCandidateSets = ObsCounterId("miner.candidate_sets");
/// Extensions dropped because the vertex set was already seen this level.
const size_t kObsDedupHits = ObsCounterId("miner.dedup_hits");
/// Frequent patterns harvested into the result across all levels.
const size_t kObsPatternsEmitted = ObsCounterId("miner.patterns_emitted");
/// Per-level latency: args = (level size being built, patterns entering).
const size_t kHistLevelUs = ObsHistogramId("miner.level_us");
const size_t kSpanLevel = ObsSpanId("miner.level");

/// Crash point, hit once per level before it is grown (fault.h).
const size_t kFpMinerLevel = FaultPointId("mine.level");

struct VertexSetHash {
  size_t operator()(const std::vector<VertexId>& vs) const {
    uint64_t h = 1469598103934665603ULL;
    for (VertexId v : vs) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// In-progress pattern at one level.
struct PatternEntry {
  SmallGraph pattern;  // canonical form
  std::vector<MotifOccurrence> occurrences;
};

// Builds the aligned embedding for vertex set `sorted_set`: canonical motif
// vertex i is played by sorted_set[canonical_to_original[i]].
MotifOccurrence AlignOccurrence(const std::vector<VertexId>& sorted_set,
                                const CanonicalResult& canon) {
  MotifOccurrence occ;
  occ.proteins.resize(sorted_set.size());
  for (size_t i = 0; i < sorted_set.size(); ++i) {
    occ.proteins[i] = sorted_set[canon.canonical_to_original[i]];
  }
  return occ;
}

using LevelMap = std::map<std::vector<uint8_t>, PatternEntry>;

uint64_t MinerFingerprint(const Graph& graph, const MinerConfig& config) {
  ByteWriter w;
  w.PutU64(config.min_size);
  w.PutU64(config.max_size);
  w.PutU64(config.min_frequency);
  w.PutU64(config.max_occurrences_per_pattern);
  w.PutU64(config.max_patterns_per_level);
  w.PutU64(GraphFingerprint(graph));
  return Fnv1a64(w.bytes());
}

/// Level-state payload: the size of the patterns currently in `level`, the
/// level itself, and everything harvested so far.
std::string EncodeLevelState(size_t level_size, const LevelMap& level,
                             const std::vector<Motif>& results) {
  ByteWriter w;
  w.PutU64(level_size);
  w.PutU64(level.size());
  for (const auto& [code, entry] : level) {
    w.PutString(std::string_view(reinterpret_cast<const char*>(code.data()),
                                 code.size()));
    EncodeSmallGraph(entry.pattern, &w);
    w.PutU64(entry.occurrences.size());
    for (const MotifOccurrence& occ : entry.occurrences) {
      w.PutU64(occ.proteins.size());
      for (const VertexId v : occ.proteins) w.PutU32(v);
    }
  }
  w.PutU64(results.size());
  for (const Motif& m : results) EncodeMotif(m, &w);
  return w.TakeBytes();
}

Status DecodeLevelState(std::string_view payload, size_t* level_size,
                        LevelMap* level, std::vector<Motif>* results) {
  ByteReader r(payload);
  uint64_t size = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&size));
  *level_size = static_cast<size_t>(size);
  uint64_t num_patterns = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&num_patterns));
  level->clear();
  for (uint64_t i = 0; i < num_patterns; ++i) {
    std::string code_bytes;
    LAMO_RETURN_IF_ERROR(r.GetString(&code_bytes));
    PatternEntry entry;
    LAMO_RETURN_IF_ERROR(DecodeSmallGraph(&r, &entry.pattern));
    uint64_t num_occurrences = 0;
    LAMO_RETURN_IF_ERROR(r.GetU64(&num_occurrences));
    for (uint64_t o = 0; o < num_occurrences; ++o) {
      uint64_t num_proteins = 0;
      LAMO_RETURN_IF_ERROR(r.GetU64(&num_proteins));
      if (num_proteins > SmallGraph::kMaxVertices) {
        return Status::Corruption("miner occurrence size out of range");
      }
      MotifOccurrence occ;
      occ.proteins.assign(static_cast<size_t>(num_proteins), 0);
      for (VertexId& v : occ.proteins) LAMO_RETURN_IF_ERROR(r.GetU32(&v));
      entry.occurrences.push_back(std::move(occ));
    }
    level->emplace(std::vector<uint8_t>(code_bytes.begin(), code_bytes.end()),
                   std::move(entry));
  }
  uint64_t num_results = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&num_results));
  results->clear();
  for (uint64_t i = 0; i < num_results; ++i) {
    Motif m;
    LAMO_RETURN_IF_ERROR(DecodeMotif(&r, &m));
    results->push_back(std::move(m));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in level state");
  return Status::OK();
}

}  // namespace

FrequentSubgraphMiner::FrequentSubgraphMiner(const Graph& graph,
                                             MinerConfig config)
    : graph_(graph), config_(config) {}

std::vector<Motif> FrequentSubgraphMiner::Mine() {
  LAMO_CHECK_GE(config_.min_size, 2u);
  LAMO_CHECK_GE(config_.max_size, config_.min_size);
  std::vector<Motif> results;

  // Each level is a deterministic function of the previous one, so the
  // (level, results) pair after any completed level is a valid restart
  // point; a resumed run replays the remaining levels byte-identically.
  const StageCheckpointer ckpt(config_.checkpoint, "mine_levels",
                               MinerFingerprint(graph_, config_));
  LevelMap level;
  size_t start_size = 2;
  bool restored = false;
  std::string payload;
  if (ckpt.TryLoad(&payload)) {
    size_t level_size = 0;
    LevelMap restored_level;
    std::vector<Motif> restored_results;
    const Status status = DecodeLevelState(payload, &level_size,
                                           &restored_level, &restored_results);
    if (status.ok() && level_size >= 2 && level_size <= config_.max_size) {
      level = std::move(restored_level);
      results = std::move(restored_results);
      start_size = level_size;
      restored = true;
    } else {
      ckpt.RecordDecodeFailure();
    }
  }
  ckpt.RecordChunks(config_.max_size - 2, start_size - 2);

  auto harvest = [&](const LevelMap& lvl, size_t size) {
    if (size < config_.min_size) return;
    for (const auto& [code, entry] : lvl) {
      Motif motif;
      motif.pattern = entry.pattern;
      motif.code = code;
      motif.occurrences = entry.occurrences;
      motif.frequency = entry.occurrences.size();
      results.push_back(std::move(motif));
      ObsIncrement(kObsPatternsEmitted);
    }
  };

  if (!restored) {
    // Level 2: the single-edge pattern with every edge as an occurrence.
    SmallGraph edge_pattern(2);
    edge_pattern.AddEdge(0, 1);
    PatternEntry entry;
    entry.pattern = edge_pattern;
    for (const auto& [a, b] : graph_.Edges()) {
      entry.occurrences.push_back(MotifOccurrence{{a, b}});
    }
    if (entry.occurrences.size() >= config_.min_frequency) {
      level.emplace(edge_pattern.AdjacencyCode(), std::move(entry));
    }
    harvest(level, 2);
  }

  const size_t save_every = std::max<size_t>(1, config_.checkpoint.every);
  size_t completed_levels = 0;
  for (size_t size = start_size; size < config_.max_size && !level.empty();
       ++size) {
    FaultHit(kFpMinerLevel);
    const ScopedItemTimer level_timer(kSpanLevel, kHistLevelUs, size + 1,
                                      level.size(), 2);
    LevelMap next;
    // A vertex set is processed at most once per level, no matter how many
    // parent occurrences can reach it.
    std::unordered_set<std::vector<VertexId>, VertexSetHash> seen_sets;

    for (const auto& [code, entry] : level) {
      (void)code;
      for (const MotifOccurrence& occ : entry.occurrences) {
        // Candidate extensions: neighbors of any occurrence vertex.
        for (VertexId v : occ.proteins) {
          for (VertexId w : graph_.Neighbors(v)) {
            if (std::find(occ.proteins.begin(), occ.proteins.end(), w) !=
                occ.proteins.end()) {
              continue;
            }
            std::vector<VertexId> extended = occ.proteins;
            extended.push_back(w);
            std::sort(extended.begin(), extended.end());
            if (!seen_sets.insert(extended).second) {
              ObsIncrement(kObsDedupHits);
              continue;
            }

            ObsIncrement(kObsCandidateSets);
            const SmallGraph induced =
                SmallGraph::InducedSubgraph(graph_, extended);
            const CanonicalResult canon = Canonicalize(induced);
            auto [it, inserted] = next.try_emplace(canon.code);
            PatternEntry& target = it->second;
            if (inserted) target.pattern = canon.graph;
            if (config_.max_occurrences_per_pattern != 0 &&
                target.occurrences.size() >=
                    config_.max_occurrences_per_pattern) {
              continue;  // frequency becomes a lower bound at the cap
            }
            target.occurrences.push_back(AlignOccurrence(extended, canon));
          }
        }
      }
    }

    // Frequency pruning.
    for (auto it = next.begin(); it != next.end();) {
      if (it->second.occurrences.size() < config_.min_frequency) {
        it = next.erase(it);
      } else {
        ++it;
      }
    }
    // Optional beam.
    if (config_.max_patterns_per_level != 0 &&
        next.size() > config_.max_patterns_per_level) {
      std::vector<std::pair<size_t, std::vector<uint8_t>>> ranked;
      ranked.reserve(next.size());
      for (const auto& [c, e] : next) {
        ranked.emplace_back(e.occurrences.size(), c);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      LevelMap pruned;
      for (size_t i = 0; i < config_.max_patterns_per_level; ++i) {
        auto node = next.extract(ranked[i].second);
        pruned.insert(std::move(node));
      }
      next = std::move(pruned);
    }

    harvest(next, size + 1);
    level = std::move(next);
    if (ckpt.enabled() && ++completed_levels % save_every == 0) {
      ckpt.Save(EncodeLevelState(size + 1, level, results));
    }
    LAMO_LOG(Debug) << "miner level " << (size + 1) << ": " << level.size()
                    << " frequent patterns";
  }
  return results;
}

}  // namespace lamo
