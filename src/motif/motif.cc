#include "motif/motif.h"

namespace lamo {

std::string Motif::ToString() const {
  std::string out = "Motif(size=" + std::to_string(size()) +
                    ", edges=" + std::to_string(pattern.num_edges()) +
                    ", freq=" + std::to_string(frequency);
  if (uniqueness >= 0.0) {
    out += ", uniq=" + std::to_string(uniqueness);
  }
  out += ")";
  return out;
}

void EncodeSmallGraph(const SmallGraph& g, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(g.num_vertices()));
  const auto edges = g.Edges();
  w->PutU32(static_cast<uint32_t>(edges.size()));
  for (const auto& [a, b] : edges) {
    w->PutU8(static_cast<uint8_t>(a));
    w->PutU8(static_cast<uint8_t>(b));
  }
}

Status DecodeSmallGraph(ByteReader* r, SmallGraph* g) {
  uint32_t n = 0;
  LAMO_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > SmallGraph::kMaxVertices) {
    return Status::Corruption("SmallGraph vertex count out of range");
  }
  uint32_t num_edges = 0;
  LAMO_RETURN_IF_ERROR(r->GetU32(&num_edges));
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    uint8_t a = 0, b = 0;
    LAMO_RETURN_IF_ERROR(r->GetU8(&a));
    LAMO_RETURN_IF_ERROR(r->GetU8(&b));
    edges.emplace_back(a, b);
  }
  StatusOr<SmallGraph> built = SmallGraph::FromEdges(n, edges);
  if (!built.ok()) {
    return Status::Corruption("SmallGraph edges invalid: " +
                              built.status().message());
  }
  *g = std::move(built).value();
  return Status::OK();
}

void EncodeMotif(const Motif& m, ByteWriter* w) {
  EncodeSmallGraph(m.pattern, w);
  w->PutU64(m.code.size());
  for (const uint8_t b : m.code) w->PutU8(b);
  w->PutU64(m.occurrences.size());
  for (const MotifOccurrence& occ : m.occurrences) {
    w->PutU64(occ.proteins.size());
    for (const VertexId v : occ.proteins) w->PutU32(v);
  }
  w->PutU64(m.frequency);
  w->PutDouble(m.uniqueness);
  w->PutU64(m.symmetric_sets_override.size());
  for (const auto& set : m.symmetric_sets_override) {
    w->PutU64(set.size());
    for (const uint32_t v : set) w->PutU32(v);
  }
}

Status DecodeMotif(ByteReader* r, Motif* m) {
  LAMO_RETURN_IF_ERROR(DecodeSmallGraph(r, &m->pattern));
  uint64_t code_size = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&code_size));
  if (code_size > r->remaining()) {
    return Status::Corruption("motif code length out of range");
  }
  m->code.assign(static_cast<size_t>(code_size), 0);
  for (uint8_t& b : m->code) LAMO_RETURN_IF_ERROR(r->GetU8(&b));
  uint64_t num_occurrences = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&num_occurrences));
  m->occurrences.clear();
  for (uint64_t i = 0; i < num_occurrences; ++i) {
    uint64_t num_proteins = 0;
    LAMO_RETURN_IF_ERROR(r->GetU64(&num_proteins));
    if (num_proteins > SmallGraph::kMaxVertices) {
      return Status::Corruption("motif occurrence size out of range");
    }
    MotifOccurrence occ;
    occ.proteins.assign(static_cast<size_t>(num_proteins), 0);
    for (VertexId& v : occ.proteins) LAMO_RETURN_IF_ERROR(r->GetU32(&v));
    m->occurrences.push_back(std::move(occ));
  }
  uint64_t frequency = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&frequency));
  m->frequency = static_cast<size_t>(frequency);
  LAMO_RETURN_IF_ERROR(r->GetDouble(&m->uniqueness));
  uint64_t num_sets = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&num_sets));
  if (num_sets > SmallGraph::kMaxVertices) {
    return Status::Corruption("motif symmetric-set count out of range");
  }
  m->symmetric_sets_override.clear();
  for (uint64_t i = 0; i < num_sets; ++i) {
    uint64_t set_size = 0;
    LAMO_RETURN_IF_ERROR(r->GetU64(&set_size));
    if (set_size > SmallGraph::kMaxVertices) {
      return Status::Corruption("motif symmetric-set size out of range");
    }
    std::vector<uint32_t> set(static_cast<size_t>(set_size), 0);
    for (uint32_t& v : set) LAMO_RETURN_IF_ERROR(r->GetU32(&v));
    m->symmetric_sets_override.push_back(std::move(set));
  }
  return Status::OK();
}

}  // namespace lamo
