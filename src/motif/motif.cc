#include "motif/motif.h"

namespace lamo {

std::string Motif::ToString() const {
  std::string out = "Motif(size=" + std::to_string(size()) +
                    ", edges=" + std::to_string(pattern.num_edges()) +
                    ", freq=" + std::to_string(frequency);
  if (uniqueness >= 0.0) {
    out += ", uniq=" + std::to_string(uniqueness);
  }
  out += ")";
  return out;
}

}  // namespace lamo
