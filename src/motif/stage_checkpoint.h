#ifndef LAMO_MOTIF_STAGE_CHECKPOINT_H_
#define LAMO_MOTIF_STAGE_CHECKPOINT_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/checkpoint.h"

namespace lamo {

/// Glue between the pipeline stages and the checkpoint container: wraps
/// Save/LoadCheckpoint with the `checkpoint.*` obs counters and the two
/// policies of DESIGN.md §9 — saves are best-effort (a failed save is logged
/// and counted, never fatal: the run keeps its in-memory state), and loads
/// are all-or-nothing (anything but a verified payload means a clean restart
/// of the stage, so a stale or corrupt checkpoint can cost recomputation but
/// never correctness).
class StageCheckpointer {
 public:
  StageCheckpointer(const CheckpointOptions& opts, std::string stage,
                    uint64_t fingerprint);

  bool enabled() const { return opts_.enabled(); }
  const CheckpointOptions& options() const { return opts_; }

  /// Durably replaces this stage's checkpoint with `payload`. Bumps
  /// checkpoint.writes / checkpoint.fsyncs on success.
  void Save(std::string_view payload) const;

  /// True (and `payload` filled) iff options().resume is set and a verified
  /// checkpoint for this stage + fingerprint exists. A missing file is a
  /// silent false; any other failure is logged and counted
  /// (checkpoint.load_failures) before falling back to a clean restart.
  bool TryLoad(std::string* payload) const;

  /// Accounts this stage's work units for the resumed_chunks <= total_chunks
  /// report invariant. No-op when checkpointing is disabled.
  void RecordChunks(size_t total, size_t resumed) const;

  /// Counts a payload decode failure (the caller restarts the stage clean).
  void RecordDecodeFailure() const;

 private:
  CheckpointOptions opts_;
  std::string stage_;
  uint64_t fingerprint_;
};

/// FNV-1a fingerprint of a graph's structure (vertex count + full adjacency),
/// the input half of a stage's checkpoint fingerprint.
uint64_t GraphFingerprint(const Graph& g);

}  // namespace lamo

#endif  // LAMO_MOTIF_STAGE_CHECKPOINT_H_
