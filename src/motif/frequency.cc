#include "motif/frequency.h"

#include <algorithm>
#include <set>
#include <utility>

namespace lamo {

size_t CountVertexDisjoint(const std::vector<MotifOccurrence>& occurrences) {
  std::set<VertexId> used;
  size_t count = 0;
  for (const MotifOccurrence& occ : occurrences) {
    bool disjoint = true;
    for (VertexId p : occ.proteins) {
      if (used.count(p) != 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    used.insert(occ.proteins.begin(), occ.proteins.end());
    ++count;
  }
  return count;
}

size_t CountEdgeDisjoint(const SmallGraph& pattern,
                         const std::vector<MotifOccurrence>& occurrences) {
  const auto pattern_edges = pattern.Edges();
  std::set<std::pair<VertexId, VertexId>> used;
  size_t count = 0;
  for (const MotifOccurrence& occ : occurrences) {
    std::vector<std::pair<VertexId, VertexId>> mapped;
    mapped.reserve(pattern_edges.size());
    for (const auto& [a, b] : pattern_edges) {
      VertexId x = occ.proteins[a];
      VertexId y = occ.proteins[b];
      if (x > y) std::swap(x, y);
      mapped.emplace_back(x, y);
    }
    bool disjoint = true;
    for (const auto& edge : mapped) {
      if (used.count(edge) != 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    used.insert(mapped.begin(), mapped.end());
    ++count;
  }
  return count;
}

size_t Frequency(const Motif& motif, FrequencyMeasure measure) {
  switch (measure) {
    case FrequencyMeasure::kF1AllOccurrences:
      return motif.occurrences.size();
    case FrequencyMeasure::kF2EdgeDisjoint:
      return CountEdgeDisjoint(motif.pattern, motif.occurrences);
    case FrequencyMeasure::kF3VertexDisjoint:
      return CountVertexDisjoint(motif.occurrences);
  }
  return 0;
}

}  // namespace lamo
