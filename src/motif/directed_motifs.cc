#include "motif/directed_motifs.h"

#include <algorithm>
#include <set>

#include "motif/esu.h"
#include "util/logging.h"

namespace lamo {

DiGraph ArcSwapRewire(const DiGraph& g, double swaps_per_arc, Rng& rng) {
  auto arcs = g.Arcs();
  const size_t m = arcs.size();
  if (m < 2) return g;
  std::set<std::pair<VertexId, VertexId>> arc_set(arcs.begin(), arcs.end());

  const size_t target_swaps =
      static_cast<size_t>(swaps_per_arc * static_cast<double>(m));
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_swaps * 50 + 100;
  while (done < target_swaps && attempts < max_attempts) {
    ++attempts;
    const size_t i = static_cast<size_t>(rng.Uniform(m));
    const size_t j = static_cast<size_t>(rng.Uniform(m));
    if (i == j) continue;
    const auto [a, b] = arcs[i];
    const auto [c, d] = arcs[j];
    // Proposed: a->d and c->b (out-degrees of a,c and in-degrees of b,d are
    // all preserved).
    if (a == d || c == b) continue;
    if (arc_set.count({a, d}) != 0 || arc_set.count({c, b}) != 0) continue;
    arc_set.erase({a, b});
    arc_set.erase({c, d});
    arc_set.insert({a, d});
    arc_set.insert({c, b});
    arcs[i] = {a, d};
    arcs[j] = {c, b};
    ++done;
  }
  DiGraphBuilder builder(g.num_vertices());
  for (const auto& [a, b] : arc_set) {
    LAMO_CHECK(builder.AddArc(a, b).ok());
  }
  return builder.Build();
}

std::map<std::vector<uint8_t>, size_t> CountDirectedSubgraphClasses(
    const DiGraph& g, size_t k) {
  std::map<std::vector<uint8_t>, size_t> counts;
  const Graph underlying = g.Underlying();
  EnumerateConnectedSubgraphs(
      underlying, k, [&](const std::vector<VertexId>& set) {
        const SmallDigraph sub = SmallDigraph::InducedSubgraph(g, set);
        ++counts[DirectedCanonicalCode(sub)];
        return true;
      });
  return counts;
}

std::vector<DirectedMotif> FindDirectedNetworkMotifs(
    const DiGraph& g, const DirectedMotifConfig& config) {
  // Pass 1: enumerate once, collecting per-class counts, one canonical
  // representative and the aligned occurrence lists.
  struct ClassEntry {
    SmallDigraph pattern{0};
    std::vector<MotifOccurrence> occurrences;
  };
  std::map<std::vector<uint8_t>, ClassEntry> classes;
  const Graph underlying = g.Underlying();
  EnumerateConnectedSubgraphs(
      underlying, config.size, [&](const std::vector<VertexId>& set) {
        const SmallDigraph sub = SmallDigraph::InducedSubgraph(g, set);
        const DirectedCanonicalResult canon = CanonicalizeDirected(sub);
        auto [it, inserted] = classes.try_emplace(canon.code);
        if (inserted) it->second.pattern = canon.graph;
        MotifOccurrence occ;
        occ.proteins.resize(set.size());
        for (size_t pos = 0; pos < set.size(); ++pos) {
          occ.proteins[pos] = set[canon.canonical_to_original[pos]];
        }
        it->second.occurrences.push_back(std::move(occ));
        return true;
      });

  // Frequency pruning.
  for (auto it = classes.begin(); it != classes.end();) {
    if (it->second.occurrences.size() < config.min_frequency) {
      it = classes.erase(it);
    } else {
      ++it;
    }
  }
  LAMO_LOG(Info) << classes.size() << " directed size-" << config.size
                 << " classes pass frequency >= " << config.min_frequency;

  // Pass 2: uniqueness against arc-swapped ensembles, counting every class
  // per random network in one enumeration.
  std::map<std::vector<uint8_t>, size_t> wins;
  Rng rng(config.seed);
  for (size_t r = 0; r < config.num_random_networks; ++r) {
    const DiGraph randomized = ArcSwapRewire(g, config.swaps_per_arc, rng);
    const auto random_counts =
        CountDirectedSubgraphClasses(randomized, config.size);
    for (const auto& [code, entry] : classes) {
      auto it = random_counts.find(code);
      const size_t random_frequency =
          it == random_counts.end() ? 0 : it->second;
      if (entry.occurrences.size() >= random_frequency) ++wins[code];
    }
  }

  std::vector<DirectedMotif> motifs;
  for (auto& [code, entry] : classes) {
    const double uniqueness =
        config.num_random_networks == 0
            ? -1.0
            : static_cast<double>(wins[code]) /
                  static_cast<double>(config.num_random_networks);
    if (config.num_random_networks > 0 &&
        uniqueness < config.uniqueness_threshold) {
      continue;
    }
    DirectedMotif motif;
    motif.pattern = entry.pattern;
    motif.as_motif.pattern = entry.pattern.Underlying();
    motif.as_motif.code = code;
    motif.as_motif.frequency = entry.occurrences.size();
    motif.as_motif.uniqueness = uniqueness;
    motif.as_motif.occurrences = std::move(entry.occurrences);
    motif.as_motif.symmetric_sets_override =
        DirectedTwinClasses(entry.pattern);
    motifs.push_back(std::move(motif));
  }
  LAMO_LOG(Info) << motifs.size() << " directed motifs pass uniqueness >= "
                 << config.uniqueness_threshold;
  return motifs;
}

}  // namespace lamo
