#include "motif/esu.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>

#include "graph/canonical.h"
#include "motif/esu_engine.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Connected size-k sets emitted by the class-counting pipelines.
const size_t kObsSubgraphs = ObsCounterId("esu.subgraphs");
/// Chunk-local canonical-form memo outcomes (the L1 in front of the shared
/// table; see CanonicalCodeCache below and SharedCanonCache).
const size_t kObsCanonHits = ObsCounterId("esu.canon_cache_hits");
const size_t kObsCanonMisses = ObsCounterId("esu.canon_cache_misses");
/// Root-range chunks processed and their summed wall time: per-chunk cost
/// distribution for the sharded enumeration.
const size_t kObsChunks = ObsCounterId("esu.chunks");
const size_t kObsChunkWallUs = ObsCounterId("esu.chunk_wall_us");
/// Per-chunk latency histogram + trace span: hub-rooted chunks dominate the
/// tail, and this is where that skew becomes visible.
const size_t kHistChunkUs = ObsHistogramId("esu.chunk_us");
const size_t kSpanChunk = ObsSpanId("esu.chunk");

// The original recursive ESU walk over Graph adjacency (binary-search
// HasEdge probes, one vector copy per tree node). Retained for two callers
// only: RAND-ESU sampling (`depth_probability` non-null), where the
// per-branch coin flips dominate anyway, and the test-only legacy hook the
// differential battery diffs the index engine against.
class EsuEnumerator {
 public:
  EsuEnumerator(const Graph& g, size_t k,
                const std::function<bool(const std::vector<VertexId>&)>& cb,
                const std::vector<double>* depth_probability, Rng* rng)
      : g_(g), k_(k), callback_(cb), probabilities_(depth_probability),
        rng_(rng) {}

  void Run() { RunRoots(0, static_cast<VertexId>(g_.num_vertices())); }

  // ESU roots every vertex set at its minimum vertex (extensions only grow
  // upward), so restricting the root range partitions the enumeration.
  void RunRoots(VertexId root_begin, VertexId root_end) {
    if (k_ == 0 || k_ > g_.num_vertices()) return;
    root_end = std::min(root_end, static_cast<VertexId>(g_.num_vertices()));
    std::vector<VertexId> subgraph;
    std::vector<VertexId> extension;
    for (VertexId v = root_begin; v < root_end; ++v) {
      if (!Explore(0)) continue;  // depth-0 sampling decision per root
      subgraph.assign(1, v);
      extension.clear();
      for (VertexId u : g_.Neighbors(v)) {
        if (u > v) extension.push_back(u);
      }
      if (!Extend(v, subgraph, extension)) return;
    }
  }

 private:
  // Returns true if this branch should be explored (always true when
  // exhaustive).
  bool Explore(size_t depth) {
    if (probabilities_ == nullptr) return true;
    const double p = (*probabilities_)[depth];
    if (p >= 1.0) return true;
    return rng_->Bernoulli(p);
  }

  // Returns false iff enumeration must stop entirely (callback abort).
  bool Extend(VertexId root, std::vector<VertexId>& subgraph,
              const std::vector<VertexId>& extension) {
    if (subgraph.size() == k_) {
      std::vector<VertexId> sorted = subgraph;
      std::sort(sorted.begin(), sorted.end());
      return callback_(sorted);
    }
    // Try each extension vertex in turn; ESU's exclusive-neighborhood rule
    // guarantees each vertex set is generated exactly once.
    for (size_t i = 0; i < extension.size(); ++i) {
      if (!Explore(subgraph.size())) continue;
      const VertexId w = extension[i];
      std::vector<VertexId> next_extension(extension.begin() + i + 1,
                                           extension.end());
      // Add exclusive neighbors of w: neighbors > root that are neither in
      // the subgraph nor adjacent to it.
      for (VertexId u : g_.Neighbors(w)) {
        if (u <= root) continue;
        if (std::find(subgraph.begin(), subgraph.end(), u) != subgraph.end())
          continue;
        bool adjacent_to_subgraph = false;
        for (VertexId s : subgraph) {
          if (g_.HasEdge(u, s)) {
            adjacent_to_subgraph = true;
            break;
          }
        }
        if (adjacent_to_subgraph) continue;
        if (std::find(next_extension.begin(), next_extension.end(), u) ==
            next_extension.end()) {
          next_extension.push_back(u);
        }
      }
      subgraph.push_back(w);
      const bool keep_going = Extend(root, subgraph, next_extension);
      subgraph.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& g_;
  size_t k_;
  const std::function<bool(const std::vector<VertexId>&)>& callback_;
  const std::vector<double>* probabilities_;
  Rng* rng_;
};

/// Chunk-local memo from raw adjacency bytes of an induced subgraph to its
/// canonical code, for sizes past SharedCanonCache::kMaxK (whose patterns
/// no longer fit a 64-bit key). Chunk-local by design: no sharing, no
/// locks, and the result of CountSubgraphClasses is bit-identical with or
/// without it.
class CanonicalCodeCache {
 public:
  const std::vector<uint8_t>& CodeFor(const SmallGraph& sub) {
    const std::vector<uint8_t> key = sub.AdjacencyCode();
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ObsIncrement(kObsCanonHits);
      return it->second;
    }
    ObsIncrement(kObsCanonMisses);
    return memo_.emplace(key, CanonicalCode(sub)).first->second;
  }

 private:
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> memo_;
};

/// Wall-clock accounting for one enumeration chunk: counters + latency
/// histogram when a sink is installed, a trace span (args = root range) when
/// a tracer is installed. One relaxed mask load when both are off.
class ScopedChunkClock {
 public:
  ScopedChunkClock(size_t lo, size_t hi)
      : mask_(ObsActiveMask()), lo_(lo), hi_(hi) {
    if (mask_ != 0) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedChunkClock() {
    if (mask_ == 0) return;
    const auto end = std::chrono::steady_clock::now();
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
            .count());
    if (mask_ & kObsSinkBit) {
      ObsIncrement(kObsChunks);
      ObsAdd(kObsChunkWallUs, us);
      ObsObserve(kHistChunkUs, us);
    }
    if (mask_ & kObsTraceBit) {
      TraceRecordSpan(kSpanChunk, start_, end, lo_, hi_, 2);
    }
  }

 private:
  uint8_t mask_;
  uint64_t lo_;
  uint64_t hi_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void EnumerateConnectedSubgraphs(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  const GraphIndex index(g);
  EnumerateConnectedSubgraphsInRootRange(
      index, k, 0, static_cast<VertexId>(g.num_vertices()), callback);
}

void EnumerateConnectedSubgraphsInRootRange(
    const Graph& g, size_t k, VertexId root_begin, VertexId root_end,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  const GraphIndex index(g);
  EnumerateConnectedSubgraphsInRootRange(index, k, root_begin, root_end,
                                         callback);
}

void EnumerateConnectedSubgraphsInRootRange(
    const GraphIndex& index, size_t k, VertexId root_begin, VertexId root_end,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  std::vector<VertexId> scratch;
  esu_internal::RunEsu(index, k, root_begin, root_end,
                       [&](const VertexId* set, size_t size) {
                         scratch.assign(set, set + size);
                         return callback(scratch);
                       });
}

namespace internal {

void EnumerateConnectedSubgraphsLegacy(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  EsuEnumerator enumerator(g, k, callback, nullptr, nullptr);
  enumerator.Run();
}

}  // namespace internal

size_t EsuRootGrain(size_t num_vertices) {
  // Many small chunks: per-root costs are heavily skewed (hub roots dominate)
  // and chunks are claimed dynamically, so fine grains balance the load. The
  // divisor keeps per-chunk overhead negligible even for tiny graphs.
  return std::max<size_t>(1, num_vertices / 256);
}

std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(const Graph& g,
                                                            size_t k) {
  return CountSubgraphClasses(g, k, nullptr);
}

std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(
    const Graph& g, size_t k, SharedCanonCache* shared_canon) {
  using Counts = std::map<std::vector<uint8_t>, size_t>;
  const size_t n = g.num_vertices();
  const GraphIndex index(g);
  // Sizes that fit the 64-bit pattern key resolve canonical codes through a
  // shared table — the caller's if provided (FindNetworkMotifsEsu shares one
  // across all uniqueness replicates), else one local to this call.
  std::optional<SharedCanonCache> own_canon;
  SharedCanonCache* canon = shared_canon;
  if (canon == nullptr && k <= SharedCanonCache::kMaxK) {
    own_canon.emplace(k);
    canon = &*own_canon;
  }
  if (canon != nullptr) LAMO_CHECK_EQ(canon->k(), k);

  return ParallelReduce<Counts>(
      n, EsuRootGrain(n), Counts{},
      [&](size_t lo, size_t hi) {
        const ScopedChunkClock clock(lo, hi);
        Counts local;
        if (canon != nullptr) {
          // Fast path: tally raw 64-bit adjacency patterns (the chunk-local
          // L1 — a hash probe per emission, no allocation), then translate
          // each distinct pattern through the shared table once.
          std::unordered_map<uint64_t, size_t> pattern_counts;
          esu_internal::RunEsu(
              index, k, static_cast<VertexId>(lo), static_cast<VertexId>(hi),
              [&](const VertexId* set, size_t size) {
                ObsIncrement(kObsSubgraphs);
                auto [it, inserted] =
                    pattern_counts.try_emplace(index.InducedBits(set, size), 1);
                if (inserted) {
                  ObsIncrement(kObsCanonMisses);
                } else {
                  ObsIncrement(kObsCanonHits);
                  ++it->second;
                }
                return true;
              });
          // Sum-merge into the sorted code map: iteration order of the
          // hash map cannot affect the totals.
          for (const auto& [bits, count] : pattern_counts) {
            local[canon->Lookup(bits).code] += count;
          }
        } else {
          CanonicalCodeCache chunk_canon;
          esu_internal::RunEsu(
              index, k, static_cast<VertexId>(lo), static_cast<VertexId>(hi),
              [&](const VertexId* set, size_t size) {
                ObsIncrement(kObsSubgraphs);
                const SmallGraph sub = SmallGraph::InducedSubgraph(
                    g, std::vector<VertexId>(set, set + size));
                ++local[chunk_canon.CodeFor(sub)];
                return true;
              });
        }
        return local;
      },
      [](Counts acc, Counts part) {
        for (auto& [code, count] : part) acc[code] += count;
        return acc;
      });
}

SampledSubgraphCounts SampleSubgraphClasses(
    const Graph& g, size_t k, const std::vector<double>& probabilities,
    Rng& rng) {
  LAMO_CHECK_EQ(probabilities.size(), k);
  double sample_probability = 1.0;
  for (double p : probabilities) sample_probability *= p;
  LAMO_CHECK_GT(sample_probability, 0.0);
  const double inverse = 1.0 / sample_probability;

  SampledSubgraphCounts result;
  std::function<bool(const std::vector<VertexId>&)> cb =
      [&](const std::vector<VertexId>& set) {
        const SmallGraph sub = SmallGraph::InducedSubgraph(g, set);
        result.estimated_counts[CanonicalCode(sub)] += inverse;
        result.estimated_total += inverse;
        ++result.samples;
        return true;
      };
  EsuEnumerator enumerator(g, k, cb, &probabilities, &rng);
  enumerator.Run();
  return result;
}

}  // namespace lamo
