#include "motif/esu.h"

#include <algorithm>

#include "graph/canonical.h"
#include "util/logging.h"

namespace lamo {
namespace {

// Shared recursion for exhaustive and sampled ESU. `depth_probability` is
// empty for exhaustive enumeration.
class EsuEnumerator {
 public:
  EsuEnumerator(const Graph& g, size_t k,
                const std::function<bool(const std::vector<VertexId>&)>& cb,
                const std::vector<double>* depth_probability, Rng* rng)
      : g_(g), k_(k), callback_(cb), probabilities_(depth_probability),
        rng_(rng) {}

  void Run() {
    if (k_ == 0 || k_ > g_.num_vertices()) return;
    std::vector<VertexId> subgraph;
    std::vector<VertexId> extension;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (!Explore(0)) continue;  // depth-0 sampling decision per root
      subgraph.assign(1, v);
      extension.clear();
      for (VertexId u : g_.Neighbors(v)) {
        if (u > v) extension.push_back(u);
      }
      if (!Extend(v, subgraph, extension)) return;
    }
  }

 private:
  // Returns true if this branch should be explored (always true when
  // exhaustive).
  bool Explore(size_t depth) {
    if (probabilities_ == nullptr) return true;
    const double p = (*probabilities_)[depth];
    if (p >= 1.0) return true;
    return rng_->Bernoulli(p);
  }

  // Returns false iff enumeration must stop entirely (callback abort).
  bool Extend(VertexId root, std::vector<VertexId>& subgraph,
              const std::vector<VertexId>& extension) {
    if (subgraph.size() == k_) {
      std::vector<VertexId> sorted = subgraph;
      std::sort(sorted.begin(), sorted.end());
      return callback_(sorted);
    }
    // Try each extension vertex in turn; ESU's exclusive-neighborhood rule
    // guarantees each vertex set is generated exactly once.
    for (size_t i = 0; i < extension.size(); ++i) {
      if (!Explore(subgraph.size())) continue;
      const VertexId w = extension[i];
      std::vector<VertexId> next_extension(extension.begin() + i + 1,
                                           extension.end());
      // Add exclusive neighbors of w: neighbors > root that are neither in
      // the subgraph nor adjacent to it.
      for (VertexId u : g_.Neighbors(w)) {
        if (u <= root) continue;
        if (std::find(subgraph.begin(), subgraph.end(), u) != subgraph.end())
          continue;
        bool adjacent_to_subgraph = false;
        for (VertexId s : subgraph) {
          if (g_.HasEdge(u, s)) {
            adjacent_to_subgraph = true;
            break;
          }
        }
        if (adjacent_to_subgraph) continue;
        if (std::find(next_extension.begin(), next_extension.end(), u) ==
            next_extension.end()) {
          next_extension.push_back(u);
        }
      }
      subgraph.push_back(w);
      const bool keep_going = Extend(root, subgraph, next_extension);
      subgraph.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& g_;
  size_t k_;
  const std::function<bool(const std::vector<VertexId>&)>& callback_;
  const std::vector<double>* probabilities_;
  Rng* rng_;
};

}  // namespace

void EnumerateConnectedSubgraphs(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  EsuEnumerator enumerator(g, k, callback, nullptr, nullptr);
  enumerator.Run();
}

std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(const Graph& g,
                                                            size_t k) {
  std::map<std::vector<uint8_t>, size_t> counts;
  EnumerateConnectedSubgraphs(g, k, [&](const std::vector<VertexId>& set) {
    const SmallGraph sub = SmallGraph::InducedSubgraph(g, set);
    ++counts[CanonicalCode(sub)];
    return true;
  });
  return counts;
}

SampledSubgraphCounts SampleSubgraphClasses(
    const Graph& g, size_t k, const std::vector<double>& probabilities,
    Rng& rng) {
  LAMO_CHECK_EQ(probabilities.size(), k);
  double sample_probability = 1.0;
  for (double p : probabilities) sample_probability *= p;
  LAMO_CHECK_GT(sample_probability, 0.0);
  const double inverse = 1.0 / sample_probability;

  SampledSubgraphCounts result;
  std::function<bool(const std::vector<VertexId>&)> cb =
      [&](const std::vector<VertexId>& set) {
        const SmallGraph sub = SmallGraph::InducedSubgraph(g, set);
        result.estimated_counts[CanonicalCode(sub)] += inverse;
        result.estimated_total += inverse;
        ++result.samples;
        return true;
      };
  EsuEnumerator enumerator(g, k, cb, &probabilities, &rng);
  enumerator.Run();
  return result;
}

}  // namespace lamo
