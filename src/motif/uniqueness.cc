#include "motif/uniqueness.h"

#include <algorithm>

#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "motif/miner.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace lamo {
namespace {

const size_t kObsReplicates = ObsCounterId("uniqueness.replicates");
/// Pattern-vs-randomized-network frequency comparisons across all replicates.
const size_t kObsPatternTests = ObsCounterId("uniqueness.pattern_tests");
/// Per-replicate latency: each replicate rewires the network and re-counts
/// every surviving pattern, so this histogram shows ensemble cost spread.
const size_t kHistReplicateUs = ObsHistogramId("uniqueness.replicate_us");
const size_t kSpanReplicate = ObsSpanId("uniqueness.replicate");

}  // namespace

void EvaluateUniqueness(const Graph& graph, const UniquenessConfig& config,
                        std::vector<Motif>* motifs) {
  LAMO_CHECK(motifs != nullptr);
  if (motifs->empty() || config.num_random_networks == 0) return;
  // One randomized network per task. Each replicate r draws from its own
  // deterministic substream Rng::Stream(seed, r), so the ensemble — and the
  // resulting uniqueness scores — is identical for any thread count.
  const auto replicate_wins = ParallelMap(
      config.num_random_networks, 1, [&](size_t r) {
        const ScopedItemTimer item(kSpanReplicate, kHistReplicateUs, r, 0, 1);
        ObsIncrement(kObsReplicates);
        ObsAdd(kObsPatternTests, motifs->size());
        Rng rng = Rng::Stream(config.seed, r);
        const Graph randomized =
            DegreePreservingRewire(graph, config.swaps_per_edge, rng);
        std::vector<uint8_t> won(motifs->size(), 0);
        for (size_t i = 0; i < motifs->size(); ++i) {
          const Motif& motif = (*motifs)[i];
          // We only need to know whether the randomized frequency exceeds
          // the real one, so counting may stop at frequency+1 occurrences.
          const size_t random_frequency =
              CountOccurrences(motif.pattern, randomized, motif.frequency + 1);
          won[i] = motif.frequency >= random_frequency ? 1 : 0;
        }
        return won;
      });
  std::vector<size_t> wins(motifs->size(), 0);
  for (const auto& won : replicate_wins) {
    for (size_t i = 0; i < motifs->size(); ++i) wins[i] += won[i];
  }
  for (size_t i = 0; i < motifs->size(); ++i) {
    (*motifs)[i].uniqueness = static_cast<double>(wins[i]) /
                              static_cast<double>(config.num_random_networks);
  }
}

std::vector<Motif> FilterUnique(std::vector<Motif> motifs, double threshold) {
  motifs.erase(std::remove_if(motifs.begin(), motifs.end(),
                              [&](const Motif& m) {
                                return m.uniqueness < threshold;
                              }),
               motifs.end());
  return motifs;
}

std::vector<Motif> FindNetworkMotifs(const Graph& graph,
                                     const MotifFindingConfig& config) {
  MinerConfig miner_config;
  miner_config.min_size = config.miner.min_size;
  miner_config.max_size = config.miner.max_size;
  miner_config.min_frequency = config.miner.min_frequency;
  miner_config.max_occurrences_per_pattern =
      config.miner.max_occurrences_per_pattern;
  miner_config.max_patterns_per_level = config.miner.max_patterns_per_level;

  FrequentSubgraphMiner miner(graph, miner_config);
  std::vector<Motif> motifs;
  {
    const ScopedTimer timer("miner");
    motifs = miner.Mine();
  }
  LAMO_LOG(Info) << "mined " << motifs.size() << " frequent patterns";
  {
    const ScopedTimer timer("uniqueness");
    EvaluateUniqueness(graph, config.uniqueness, &motifs);
  }
  motifs = FilterUnique(std::move(motifs), config.uniqueness_threshold);
  LAMO_LOG(Info) << motifs.size() << " patterns pass uniqueness >= "
                 << config.uniqueness_threshold;
  return motifs;
}

}  // namespace lamo
