#include "motif/uniqueness.h"

#include <algorithm>

#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "motif/miner.h"
#include "motif/stage_checkpoint.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/fault.h"
#include "util/logging.h"

namespace lamo {
namespace {

const size_t kObsReplicates = ObsCounterId("uniqueness.replicates");
/// Pattern-vs-randomized-network frequency comparisons across all replicates.
const size_t kObsPatternTests = ObsCounterId("uniqueness.pattern_tests");
/// Per-replicate latency: each replicate rewires the network and re-counts
/// every surviving pattern, so this histogram shows ensemble cost spread.
const size_t kHistReplicateUs = ObsHistogramId("uniqueness.replicate_us");
const size_t kSpanReplicate = ObsSpanId("uniqueness.replicate");

/// Crash point, hit once per replicate group (fault.h).
const size_t kFpReplicate = FaultPointId("uniqueness.replicate");

uint64_t UniquenessFingerprint(const Graph& graph,
                               const UniquenessConfig& config,
                               const std::vector<Motif>& motifs) {
  ByteWriter w;
  w.PutU64(config.num_random_networks);
  w.PutDouble(config.swaps_per_edge);
  w.PutU64(config.seed);
  w.PutU64(GraphFingerprint(graph));
  // The win vector is indexed by motif order, so the checkpoint is only
  // valid for this exact motif list.
  w.PutU64(motifs.size());
  for (const Motif& m : motifs) {
    w.PutString(std::string_view(reinterpret_cast<const char*>(m.code.data()),
                                 m.code.size()));
    w.PutU64(m.frequency);
  }
  return Fnv1a64(w.bytes());
}

std::string EncodeWinState(size_t next_replicate,
                           const std::vector<uint64_t>& wins) {
  ByteWriter w;
  w.PutU64(next_replicate);
  w.PutU64(wins.size());
  for (const uint64_t v : wins) w.PutU64(v);
  return w.TakeBytes();
}

Status DecodeWinState(std::string_view payload, size_t expected_motifs,
                      size_t* next_replicate, std::vector<uint64_t>* wins) {
  ByteReader r(payload);
  uint64_t rep = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&rep));
  *next_replicate = static_cast<size_t>(rep);
  uint64_t count = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&count));
  if (count != expected_motifs) {
    return Status::Corruption("uniqueness win-vector size mismatch");
  }
  wins->assign(static_cast<size_t>(count), 0);
  for (uint64_t& v : *wins) LAMO_RETURN_IF_ERROR(r.GetU64(&v));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in win state");
  return Status::OK();
}

}  // namespace

void EvaluateUniqueness(const Graph& graph, const UniquenessConfig& config,
                        std::vector<Motif>* motifs) {
  LAMO_CHECK(motifs != nullptr);
  if (motifs->empty() || config.num_random_networks == 0) return;
  // One randomized network per task. Each replicate r draws from its own
  // deterministic substream Rng::Stream(seed, r), so the ensemble — and the
  // resulting uniqueness scores — is identical for any thread count, and a
  // run resumed from a replicate-group checkpoint accumulates the exact
  // integer win counts an uninterrupted run would.
  const StageCheckpointer ckpt(
      config.checkpoint, "uniqueness",
      UniquenessFingerprint(graph, config, *motifs));
  std::vector<uint64_t> wins(motifs->size(), 0);
  size_t next_replicate = 0;
  std::string payload;
  if (ckpt.TryLoad(&payload)) {
    size_t restored_replicate = 0;
    std::vector<uint64_t> restored;
    const Status status = DecodeWinState(payload, motifs->size(),
                                         &restored_replicate, &restored);
    if (status.ok() && restored_replicate <= config.num_random_networks) {
      wins = std::move(restored);
      next_replicate = restored_replicate;
    } else {
      ckpt.RecordDecodeFailure();
    }
  }
  ckpt.RecordChunks(config.num_random_networks, next_replicate);
  const size_t replicates_per_group =
      ckpt.enabled() ? std::max<size_t>(1, config.checkpoint.every)
                     : config.num_random_networks;
  for (size_t rlo = next_replicate; rlo < config.num_random_networks;
       rlo += replicates_per_group) {
    FaultHit(kFpReplicate);
    const size_t rhi =
        std::min(config.num_random_networks, rlo + replicates_per_group);
    const auto replicate_wins = ParallelMap(rhi - rlo, 1, [&](size_t i) {
      const size_t r = rlo + i;
      const ScopedItemTimer item(kSpanReplicate, kHistReplicateUs, r, 0, 1);
      ObsIncrement(kObsReplicates);
      ObsAdd(kObsPatternTests, motifs->size());
      Rng rng = Rng::Stream(config.seed, r);
      const Graph randomized =
          DegreePreservingRewire(graph, config.swaps_per_edge, rng);
      std::vector<uint8_t> won(motifs->size(), 0);
      for (size_t m = 0; m < motifs->size(); ++m) {
        const Motif& motif = (*motifs)[m];
        // We only need to know whether the randomized frequency exceeds
        // the real one, so counting may stop at frequency+1 occurrences.
        const size_t random_frequency =
            CountOccurrences(motif.pattern, randomized, motif.frequency + 1);
        won[m] = motif.frequency >= random_frequency ? 1 : 0;
      }
      return won;
    });
    for (const auto& won : replicate_wins) {
      for (size_t m = 0; m < motifs->size(); ++m) wins[m] += won[m];
    }
    if (ckpt.enabled()) ckpt.Save(EncodeWinState(rhi, wins));
  }
  for (size_t i = 0; i < motifs->size(); ++i) {
    (*motifs)[i].uniqueness = static_cast<double>(wins[i]) /
                              static_cast<double>(config.num_random_networks);
  }
}

std::vector<Motif> FilterUnique(std::vector<Motif> motifs, double threshold) {
  motifs.erase(std::remove_if(motifs.begin(), motifs.end(),
                              [&](const Motif& m) {
                                return m.uniqueness < threshold;
                              }),
               motifs.end());
  return motifs;
}

std::vector<Motif> FindNetworkMotifs(const Graph& graph,
                                     const MotifFindingConfig& config) {
  MinerConfig miner_config;
  miner_config.min_size = config.miner.min_size;
  miner_config.max_size = config.miner.max_size;
  miner_config.min_frequency = config.miner.min_frequency;
  miner_config.max_occurrences_per_pattern =
      config.miner.max_occurrences_per_pattern;
  miner_config.max_patterns_per_level = config.miner.max_patterns_per_level;
  miner_config.checkpoint = config.checkpoint;

  FrequentSubgraphMiner miner(graph, miner_config);
  std::vector<Motif> motifs;
  {
    const ScopedTimer timer("miner");
    motifs = miner.Mine();
  }
  LAMO_LOG(Info) << "mined " << motifs.size() << " frequent patterns";
  {
    const ScopedTimer timer("uniqueness");
    UniquenessConfig uniq_config = config.uniqueness;
    uniq_config.checkpoint = config.checkpoint;
    EvaluateUniqueness(graph, uniq_config, &motifs);
  }
  motifs = FilterUnique(std::move(motifs), config.uniqueness_threshold);
  LAMO_LOG(Info) << motifs.size() << " patterns pass uniqueness >= "
                 << config.uniqueness_threshold;
  return motifs;
}

}  // namespace lamo
