#include "motif/canon_cache.h"

#include "obs/obs.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Shared-table outcomes; lookups == hits + misses by construction (one
/// pair of ticks per Lookup), enforced by lamo_report_check.
const size_t kObsLookups = ObsCounterId("esu.canon_shared_lookups");
const size_t kObsHits = ObsCounterId("esu.canon_shared_hits");
const size_t kObsMisses = ObsCounterId("esu.canon_shared_misses");

/// Finalizer for splitmix64 — spreads the low-entropy adjacency keys across
/// shards far better than taking the raw low bits.
uint64_t MixKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

size_t PairBits(size_t k) { return k * (k - 1) / 2; }

}  // namespace

SharedCanonCache::SharedCanonCache(size_t k) : k_(k) {
  LAMO_CHECK_LE(k_, kMaxK);
  if (k_ <= 6) {
    dense_ = std::vector<std::atomic<const CanonicalResult*>>(
        size_t{1} << PairBits(k_));
    for (auto& slot : dense_) slot.store(nullptr, std::memory_order_relaxed);
  } else {
    shards_ = std::make_unique<Shard[]>(kNumShards);
  }
}

SharedCanonCache::~SharedCanonCache() {
  for (auto& slot : dense_) {
    delete slot.load(std::memory_order_acquire);
  }
}

SmallGraph SharedCanonCache::UnpackBits(uint64_t bits, size_t k) {
  SmallGraph g(k);
  size_t pair = 0;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j, ++pair) {
      if ((bits >> pair) & 1) g.AddEdge(i, j);
    }
  }
  return g;
}

uint64_t SharedCanonCache::PackBits(const SmallGraph& g) {
  const size_t k = g.num_vertices();
  LAMO_CHECK_LE(k, kMaxK + 1);
  uint64_t bits = 0;
  size_t pair = 0;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j, ++pair) {
      if (g.HasEdge(i, j)) bits |= uint64_t{1} << pair;
    }
  }
  return bits;
}

const CanonicalResult& SharedCanonCache::Lookup(uint64_t bits) {
  ObsIncrement(kObsLookups);
  return dense_.empty() ? LookupSharded(bits) : LookupDense(bits);
}

const CanonicalResult& SharedCanonCache::LookupDense(uint64_t bits) {
  std::atomic<const CanonicalResult*>& slot = dense_[bits];
  const CanonicalResult* found = slot.load(std::memory_order_acquire);
  if (found != nullptr) {
    ObsIncrement(kObsHits);
    return *found;
  }
  ObsIncrement(kObsMisses);
  const CanonicalResult* computed =
      new CanonicalResult(Canonicalize(UnpackBits(bits, k_)));
  const CanonicalResult* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, computed,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    // Another worker canonicalized the same pattern first; both results are
    // identical (Canonicalize is pure), keep theirs.
    delete computed;
    return *expected;
  }
  return *computed;
}

const CanonicalResult& SharedCanonCache::LookupSharded(uint64_t bits) {
  Shard& shard = shards_[MixKey(bits) % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(bits);
  if (it != shard.entries.end()) {
    ObsIncrement(kObsHits);
    return *it->second;
  }
  ObsIncrement(kObsMisses);
  auto result =
      std::make_unique<CanonicalResult>(Canonicalize(UnpackBits(bits, k_)));
  return *shard.entries.emplace(bits, std::move(result)).first->second;
}

}  // namespace lamo
