#include "motif/stage_checkpoint.h"

#include <utility>

#include "obs/obs.h"
#include "util/logging.h"

namespace lamo {
namespace {

const size_t kObsWrites = ObsCounterId("checkpoint.writes");
const size_t kObsFsyncs = ObsCounterId("checkpoint.fsyncs");
const size_t kObsLoadFailures = ObsCounterId("checkpoint.load_failures");
const size_t kObsTotalChunks = ObsCounterId("checkpoint.total_chunks");
const size_t kObsResumedChunks = ObsCounterId("checkpoint.resumed_chunks");

}  // namespace

StageCheckpointer::StageCheckpointer(const CheckpointOptions& opts,
                                     std::string stage, uint64_t fingerprint)
    : opts_(opts), stage_(std::move(stage)), fingerprint_(fingerprint) {}

void StageCheckpointer::Save(std::string_view payload) const {
  size_t fsyncs = 0;
  const Status status =
      SaveCheckpoint(opts_.dir, stage_, fingerprint_, payload, &fsyncs);
  if (!status.ok()) {
    LAMO_LOG(Warning) << "checkpoint save failed for stage " << stage_ << ": "
                   << status;
    return;
  }
  ObsIncrement(kObsWrites);
  ObsAdd(kObsFsyncs, fsyncs);
}

bool StageCheckpointer::TryLoad(std::string* payload) const {
  if (!opts_.resume || !opts_.enabled()) return false;
  const Status status =
      LoadCheckpoint(opts_.dir, stage_, fingerprint_, payload);
  if (status.ok()) return true;
  if (!status.IsNotFound()) {
    LAMO_LOG(Warning) << "checkpoint load failed for stage " << stage_
                   << " (restarting it clean): " << status;
    ObsIncrement(kObsLoadFailures);
  }
  return false;
}

void StageCheckpointer::RecordChunks(size_t total, size_t resumed) const {
  if (!opts_.enabled()) return;
  ObsAdd(kObsTotalChunks, total);
  ObsAdd(kObsResumedChunks, resumed);
}

void StageCheckpointer::RecordDecodeFailure() const {
  LAMO_LOG(Warning) << "checkpoint payload for stage " << stage_
                 << " failed to decode; restarting it clean";
  ObsIncrement(kObsLoadFailures);
}

uint64_t GraphFingerprint(const Graph& g) {
  ByteWriter w;
  w.PutU64(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.Neighbors(v)) w.PutU32(u);
  }
  return Fnv1a64(w.bytes());
}

}  // namespace lamo
