#ifndef LAMO_MOTIF_DIRECTED_MOTIFS_H_
#define LAMO_MOTIF_DIRECTED_MOTIFS_H_

#include <map>
#include <vector>

#include "graph/digraph.h"
#include "graph/small_digraph.h"
#include "motif/motif.h"
#include "util/random.h"

namespace lamo {

/// Degree-preserving randomization of a digraph: arc swaps
/// (a->b, c->d) -> (a->d, c->b) that preserve every vertex's in- and
/// out-degree [Milo et al.'s null model for directed networks].
DiGraph ArcSwapRewire(const DiGraph& g, double swaps_per_arc, Rng& rng);

/// Counts weakly-connected induced size-k subgraphs per directed
/// isomorphism class (key: directed canonical code). The directed analogue
/// of CountSubgraphClasses; enumeration runs over the underlying undirected
/// graph with ESU.
std::map<std::vector<uint8_t>, size_t> CountDirectedSubgraphClasses(
    const DiGraph& g, size_t k);

/// Configuration for directed motif finding.
struct DirectedMotifConfig {
  /// Subgraph size (directed motif finding is per-size, following
  /// mfinder/FANMOD practice; sizes 3-4 are standard for regulatory
  /// networks).
  size_t size = 3;
  /// Minimum occurrences for a class to be reported.
  size_t min_frequency = 5;
  /// Randomized networks for the uniqueness test.
  size_t num_random_networks = 10;
  /// Arc swaps per arc when randomizing.
  double swaps_per_arc = 3.0;
  /// Classes below this uniqueness are dropped (the motif criterion).
  double uniqueness_threshold = 0.95;
  uint64_t seed = 42;
};

/// A directed network motif: the directed pattern plus its realization as a
/// labelable Motif (occurrences aligned to the *directed* canonical vertex
/// order; `as_motif.pattern` holds the underlying undirected pattern and
/// `as_motif.symmetric_sets_override` carries the directed twin classes, so
/// LaMoFinder can label directed motifs unchanged — the paper's future-work
/// extension).
struct DirectedMotif {
  SmallDigraph pattern;
  Motif as_motif;
};

/// Finds directed network motifs of the configured size: enumerates all
/// weakly-connected induced subgraphs, groups them by directed canonical
/// code, keeps frequent classes, and scores uniqueness against an ensemble
/// of arc-swap-randomized networks (per-network class counting — one
/// enumeration per random network covers every candidate class at once).
std::vector<DirectedMotif> FindDirectedNetworkMotifs(
    const DiGraph& g, const DirectedMotifConfig& config);

}  // namespace lamo

#endif  // LAMO_MOTIF_DIRECTED_MOTIFS_H_
