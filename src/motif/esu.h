#ifndef LAMO_MOTIF_ESU_H_
#define LAMO_MOTIF_ESU_H_

#include <functional>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/small_graph.h"
#include "util/random.h"

namespace lamo {

/// Exhaustive enumeration of all connected vertex sets of size k (FANMOD's
/// ESU algorithm, Wernicke 2006). Each set is emitted exactly once, in
/// ascending vertex order. Return false from the callback to stop early.
///
/// ESU is the exhaustive ground truth we cross-check the level-wise
/// NeMoFinder-style miner against (practical for k <= ~6 on PPI-scale
/// networks).
void EnumerateConnectedSubgraphs(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// Enumerates only the connected size-k sets whose minimum vertex (ESU's
/// "root") lies in [root_begin, root_end). Every set is rooted at exactly
/// one vertex, so disjoint root ranges partition the full enumeration; this
/// is the sharding axis of the parallel pipelines (parallel/parallel_for.h).
/// Within a range, sets are emitted in the same order as the full-range
/// call.
void EnumerateConnectedSubgraphsInRootRange(
    const Graph& g, size_t k, VertexId root_begin, VertexId root_end,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// The root-range chunk size the parallel ESU pipelines use for a graph of
/// `num_vertices` vertices (small, to balance hub-dominated root costs).
size_t EsuRootGrain(size_t num_vertices);

/// Counts connected size-k vertex sets per isomorphism class. The key is the
/// canonical code of the induced subgraph. Runs on the parallel runtime
/// (serially when ThreadCount() == 1 or already inside a parallel region);
/// results are identical for any thread count.
std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(const Graph& g,
                                                            size_t k);

/// RAND-ESU (Wernicke): each branch of the ESU tree is explored with the
/// per-depth probability from `probabilities` (size k; product = sampling
/// fraction). Unbiased estimates of subgraph-class *concentrations* are
/// obtained by weighting each sample by 1/P(sampled). This is the
/// mfinder-style sampling estimator of Kashtan et al. (2004) in its
/// corrected ESU form.
struct SampledSubgraphCounts {
  /// Estimated total number of connected size-k sets.
  double estimated_total = 0;
  /// Estimated count per canonical class.
  std::map<std::vector<uint8_t>, double> estimated_counts;
  /// Number of sets actually sampled.
  size_t samples = 0;
};

SampledSubgraphCounts SampleSubgraphClasses(
    const Graph& g, size_t k, const std::vector<double>& probabilities,
    Rng& rng);

}  // namespace lamo

#endif  // LAMO_MOTIF_ESU_H_
