#ifndef LAMO_MOTIF_ESU_H_
#define LAMO_MOTIF_ESU_H_

#include <functional>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_index.h"
#include "graph/small_graph.h"
#include "motif/canon_cache.h"
#include "util/random.h"

namespace lamo {

/// Exhaustive enumeration of all connected vertex sets of size k (FANMOD's
/// ESU algorithm, Wernicke 2006). Each set is emitted exactly once, in
/// ascending vertex order. Return false from the callback to stop early.
///
/// ESU is the exhaustive ground truth we cross-check the level-wise
/// NeMoFinder-style miner against (practical for k <= ~6 on PPI-scale
/// networks). Runs on the index-centric engine (a GraphIndex is built
/// internally); use the GraphIndex overload below to amortize the index
/// across many calls.
void EnumerateConnectedSubgraphs(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// Enumerates only the connected size-k sets whose minimum vertex (ESU's
/// "root") lies in [root_begin, root_end). Every set is rooted at exactly
/// one vertex, so disjoint root ranges partition the full enumeration; this
/// is the sharding axis of the parallel pipelines (parallel/parallel_for.h).
/// Within a range, sets are emitted in the same order as the full-range
/// call.
void EnumerateConnectedSubgraphsInRootRange(
    const Graph& g, size_t k, VertexId root_begin, VertexId root_end,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// Same enumeration over a prebuilt GraphIndex — the form the mining hot
/// paths use: build the index once at load, run every chunk (and, in tests,
/// the sparse fallback) against it without rebuilding.
void EnumerateConnectedSubgraphsInRootRange(
    const GraphIndex& index, size_t k, VertexId root_begin, VertexId root_end,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// The root-range chunk size the parallel ESU pipelines use for a graph of
/// `num_vertices` vertices (small, to balance hub-dominated root costs).
size_t EsuRootGrain(size_t num_vertices);

/// Counts connected size-k vertex sets per isomorphism class. The key is the
/// canonical code of the induced subgraph. Runs on the parallel runtime
/// (serially when ThreadCount() == 1 or already inside a parallel region);
/// results are identical for any thread count.
std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(const Graph& g,
                                                            size_t k);

/// As above, but resolving canonical codes through a caller-owned shared
/// canonicalization table (which must have been built for the same k).
/// FindNetworkMotifsEsu threads one table through the real network and all
/// uniqueness replicates, so each adjacency pattern is canonicalized once
/// per run instead of once per chunk per network. Passing nullptr (or any
/// k > SharedCanonCache::kMaxK) uses chunk-local caches instead; results
/// are identical either way.
std::map<std::vector<uint8_t>, size_t> CountSubgraphClasses(
    const Graph& g, size_t k, SharedCanonCache* shared_canon);

namespace internal {

/// Test-only hook: the pre-index, pointer-chasing ESU walk (adjacency
/// probes through Graph::HasEdge, per-node vector copies). Kept solely so
/// the differential battery can diff the index-centric engine against the
/// original in-process; production paths never call it.
void EnumerateConnectedSubgraphsLegacy(
    const Graph& g, size_t k,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

}  // namespace internal

/// RAND-ESU (Wernicke): each branch of the ESU tree is explored with the
/// per-depth probability from `probabilities` (size k; product = sampling
/// fraction). Unbiased estimates of subgraph-class *concentrations* are
/// obtained by weighting each sample by 1/P(sampled). This is the
/// mfinder-style sampling estimator of Kashtan et al. (2004) in its
/// corrected ESU form.
struct SampledSubgraphCounts {
  /// Estimated total number of connected size-k sets.
  double estimated_total = 0;
  /// Estimated count per canonical class.
  std::map<std::vector<uint8_t>, double> estimated_counts;
  /// Number of sets actually sampled.
  size_t samples = 0;
};

SampledSubgraphCounts SampleSubgraphClasses(
    const Graph& g, size_t k, const std::vector<double>& probabilities,
    Rng& rng);

}  // namespace lamo

#endif  // LAMO_MOTIF_ESU_H_
