#ifndef LAMO_MOTIF_DELTA_ESU_H_
#define LAMO_MOTIF_DELTA_ESU_H_

#include <cstdint>
#include <vector>

#include "graph/graph_index.h"

namespace lamo {

/// ---- Pair-anchored ESU: the delta enumerator ------------------------------
///
/// When the edge {u, v} is added or deleted, the only vertex sets whose
/// induced pattern can change are the connected k-sets containing *both*
/// endpoints — everything else induces the same adjacency before and after.
/// So an incremental update never re-mines the graph: it re-enumerates the
/// (k-1)-hop neighborhood around the edge (Berg & Lässig's locality argument)
/// and diffs the pattern each touched set induces with and without the edge.
///
/// EnumeratePairSubgraphs does that re-enumeration: an ESU walk whose seed is
/// the fixed two-vertex set {u, v} instead of a single root. Wernicke's
/// exclusive-neighborhood invariant (a vertex becomes a candidate exactly
/// once, when the first subgraph vertex adjacent to it joins) carries over to
/// any connected seed, so every connected k-superset of {u, v} is emitted
/// exactly once, with no root-minimality filter. Both bit packings of each
/// set are returned so one enumeration on the graph *with* the edge serves
/// additions and deletions alike:
///
///   ADDEDGE: sets connected without the edge *move* pattern
///            (bits_without -> bits_with); newly-connected sets are pure
///            additions of bits_with.
///   DELEDGE: every set loses bits_with; sets still connected without the
///            edge re-appear as bits_without.

/// One connected k-set containing both anchor endpoints.
struct PairSubgraph {
  /// The vertex set, ascending (includes both u and v).
  std::vector<VertexId> verts;
  /// InducedBits packing of the set's adjacency *including* the anchor edge.
  uint64_t bits_with = 0;
  /// bits_with with the anchor pair bit cleared — the set's adjacency in the
  /// graph without the edge.
  uint64_t bits_without = 0;
  /// True iff the set stays connected without the anchor edge (bits_without
  /// then describes a valid connected pattern).
  bool connected_without = false;
};

/// Appends to `*out` (cleared first) every connected k-vertex set of `index`
/// containing both `u` and `v`, in deterministic order. `index` must contain
/// the edge {u, v}; 2 <= k <= GraphIndex::kMaxInducedBitsVertices. Works on
/// dense and CSR-only indexes (neighbor lists only).
void EnumeratePairSubgraphs(const GraphIndex& index, VertexId u, VertexId v,
                            size_t k, std::vector<PairSubgraph>* out);

/// Bit position of pair (i, j), i < j, within the InducedBits upper-triangle
/// packing of a k-vertex subgraph (lexicographic pair order, lowest bit
/// first).
size_t PairBitIndex(size_t i, size_t j, size_t k);

/// True iff the packed upper-triangle adjacency `bits` describes a connected
/// graph on k vertices (BFS over the mask; any k the packing supports, unlike
/// GdsOrbitTable::ConnectedMask which stops at 5).
bool MaskConnected(uint64_t bits, size_t k);

}  // namespace lamo

#endif  // LAMO_MOTIF_DELTA_ESU_H_
