#include "motif/esu_finder.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "motif/esu_engine.h"
#include "motif/stage_checkpoint.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/random.h"

namespace lamo {
namespace {

const size_t kObsSubgraphs = ObsCounterId("esu.subgraphs");
const size_t kObsCanonHits = ObsCounterId("esu.canon_cache_hits");
const size_t kObsCanonMisses = ObsCounterId("esu.canon_cache_misses");
const size_t kObsReplicates = ObsCounterId("uniqueness.replicates");
const size_t kObsPatternTests = ObsCounterId("uniqueness.pattern_tests");
/// Same per-item instruments as the dedicated mining/uniqueness passes: the
/// ESU finder runs both phases internally, so its chunks and replicates feed
/// the shared histograms and span names.
const size_t kHistChunkUs = ObsHistogramId("esu.chunk_us");
const size_t kSpanChunk = ObsSpanId("esu.chunk");
const size_t kHistReplicateUs = ObsHistogramId("uniqueness.replicate_us");
const size_t kSpanReplicate = ObsSpanId("uniqueness.replicate");

/// Crash points, one per checkpoint group of each half (fault.h).
const size_t kFpEnumChunk = FaultPointId("mine.enum.chunk");
const size_t kFpUniqReplicate = FaultPointId("mine.uniq.replicate");

/// Chunk-local memo from raw adjacency bytes to the full canonicalization
/// result (code, canonical graph, permutation) — the fallback for sizes past
/// SharedCanonCache::kMaxK, whose patterns outgrow the 64-bit key. Same
/// determinism argument as the code-only cache in esu.cc: Canonicalize is a
/// pure function of the induced subgraph, and the cache never crosses a
/// chunk boundary.
class CanonicalResultCache {
 public:
  const CanonicalResult& ResultFor(const SmallGraph& sub) {
    const std::vector<uint8_t> key = sub.AdjacencyCode();
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ObsIncrement(kObsCanonHits);
      return it->second;
    }
    ObsIncrement(kObsCanonMisses);
    return memo_.emplace(key, Canonicalize(sub)).first->second;
  }

 private:
  std::map<std::vector<uint8_t>, CanonicalResult> memo_;
};

struct ClassEntry {
  SmallGraph pattern{0};
  std::vector<MotifOccurrence> occurrences;
};
using ClassMap = std::map<std::vector<uint8_t>, ClassEntry>;

/// Folds one chunk's class map into the accumulator, appending occurrences
/// in chunk order (the serial occurrence order for any thread count).
void MergeClassMap(ClassMap* acc, ClassMap part) {
  for (auto& [code, entry] : part) {
    auto [it, inserted] = acc->try_emplace(code, std::move(entry));
    if (!inserted) {
      auto& dst = it->second.occurrences;
      auto& src = entry.occurrences;
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    }
  }
}

uint64_t EsuFingerprint(const Graph& graph, const EsuMotifConfig& config) {
  ByteWriter w;
  w.PutU64(config.size);
  w.PutU64(config.min_frequency);
  w.PutU64(config.num_random_networks);
  w.PutDouble(config.swaps_per_edge);
  w.PutDouble(config.uniqueness_threshold);
  w.PutU64(config.seed);
  w.PutU64(GraphFingerprint(graph));
  return Fnv1a64(w.bytes());
}

std::string EncodeEnumState(size_t next_root, const ClassMap& classes) {
  ByteWriter w;
  w.PutU64(next_root);
  w.PutU64(classes.size());
  for (const auto& [code, entry] : classes) {
    w.PutString(std::string_view(reinterpret_cast<const char*>(code.data()),
                                 code.size()));
    EncodeSmallGraph(entry.pattern, &w);
    w.PutU64(entry.occurrences.size());
    for (const MotifOccurrence& occ : entry.occurrences) {
      w.PutU64(occ.proteins.size());
      for (const VertexId v : occ.proteins) w.PutU32(v);
    }
  }
  return w.TakeBytes();
}

Status DecodeEnumState(std::string_view payload, size_t* next_root,
                       ClassMap* classes) {
  ByteReader r(payload);
  uint64_t root = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&root));
  *next_root = static_cast<size_t>(root);
  uint64_t num_classes = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&num_classes));
  classes->clear();
  for (uint64_t i = 0; i < num_classes; ++i) {
    std::string code_bytes;
    LAMO_RETURN_IF_ERROR(r.GetString(&code_bytes));
    ClassEntry entry;
    LAMO_RETURN_IF_ERROR(DecodeSmallGraph(&r, &entry.pattern));
    uint64_t num_occurrences = 0;
    LAMO_RETURN_IF_ERROR(r.GetU64(&num_occurrences));
    for (uint64_t o = 0; o < num_occurrences; ++o) {
      uint64_t num_proteins = 0;
      LAMO_RETURN_IF_ERROR(r.GetU64(&num_proteins));
      if (num_proteins > SmallGraph::kMaxVertices) {
        return Status::Corruption("enum occurrence size out of range");
      }
      MotifOccurrence occ;
      occ.proteins.assign(static_cast<size_t>(num_proteins), 0);
      for (VertexId& v : occ.proteins) LAMO_RETURN_IF_ERROR(r.GetU32(&v));
      entry.occurrences.push_back(std::move(occ));
    }
    std::vector<uint8_t> code(code_bytes.begin(), code_bytes.end());
    classes->emplace(std::move(code), std::move(entry));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in enum state");
  return Status::OK();
}

std::string EncodeWinState(size_t next_replicate,
                           const std::vector<uint64_t>& wins) {
  ByteWriter w;
  w.PutU64(next_replicate);
  w.PutU64(wins.size());
  for (const uint64_t v : wins) w.PutU64(v);
  return w.TakeBytes();
}

Status DecodeWinState(std::string_view payload, size_t expected_classes,
                      size_t* next_replicate, std::vector<uint64_t>* wins) {
  ByteReader r(payload);
  uint64_t rep = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&rep));
  *next_replicate = static_cast<size_t>(rep);
  uint64_t count = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&count));
  if (count != expected_classes) {
    return Status::Corruption("uniqueness win-vector size mismatch");
  }
  wins->assign(static_cast<size_t>(count), 0);
  for (uint64_t& v : *wins) LAMO_RETURN_IF_ERROR(r.GetU64(&v));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in win state");
  return Status::OK();
}

}  // namespace

std::vector<Motif> FindNetworkMotifsEsu(const Graph& graph,
                                        const EsuMotifConfig& config) {
  const size_t n = graph.num_vertices();
  const size_t grain = EsuRootGrain(n);
  const uint64_t fingerprint = EsuFingerprint(graph, config);
  const std::string size_tag = std::to_string(config.size);

  // Index built once per run: CSR neighbor arrays plus (for all but
  // pathological vertex counts) the dense bitset adjacency the ESU engine's
  // inner loop probes. Shared read-only by every chunk worker.
  const GraphIndex index(graph);
  // One canonicalization table for the whole run — every enumeration chunk
  // and every uniqueness replicate resolves through it, so each adjacency
  // pattern is canonicalized once per run. Sizes past the 64-bit key fall
  // back to chunk-local caches (CanonicalResultCache below).
  std::optional<SharedCanonCache> shared_canon;
  if (config.size <= SharedCanonCache::kMaxK) shared_canon.emplace(config.size);

  // Enumeration is sharded by ESU root vertex; per-chunk class maps are
  // merged in chunk order, which reproduces the serial occurrence order
  // (roots ascending, DFS order within a root) for any thread count. With
  // checkpointing on, chunks are processed in groups of `every` — group
  // boundaries are multiples of the grain, so the sub-chunks and their fold
  // order are exactly those of the single full-range reduce, and a resumed
  // run picks up the identical accumulator.
  ClassMap classes;
  {
    const ScopedTimer timer("esu_enumeration");
    const StageCheckpointer ckpt(config.checkpoint, "mine_enum_" + size_tag,
                                 fingerprint);
    size_t next_root = 0;
    std::string payload;
    if (ckpt.TryLoad(&payload)) {
      size_t restored_root = 0;
      ClassMap restored;
      const Status status =
          DecodeEnumState(payload, &restored_root, &restored);
      if (status.ok() && restored_root <= n &&
          (restored_root % grain == 0 || restored_root == n)) {
        classes = std::move(restored);
        next_root = restored_root;
      } else {
        ckpt.RecordDecodeFailure();
      }
    }
    const size_t num_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
    ckpt.RecordChunks(num_chunks, (next_root + grain - 1) / grain);
    const size_t roots_per_group =
        ckpt.enabled() ? std::max<size_t>(1, config.checkpoint.every) * grain
                       : std::max<size_t>(1, n);
    for (size_t glo = next_root; glo < n; glo += roots_per_group) {
      FaultHit(kFpEnumChunk);
      const size_t ghi = std::min(n, glo + roots_per_group);
      const size_t group_chunks = (ghi - glo + grain - 1) / grain;
      std::vector<ClassMap> partials(group_chunks);
      ParallelForChunks(glo, ghi, grain, [&](size_t chunk, size_t lo,
                                             size_t hi) {
        const ScopedItemTimer item(kSpanChunk, kHistChunkUs, lo, hi, 2);
        ClassMap local;
        const auto record = [&](const VertexId* set, size_t size,
                                const CanonicalResult& canon) {
          auto [it, inserted] = local.try_emplace(canon.code);
          if (inserted) it->second.pattern = canon.graph;
          MotifOccurrence occ;
          occ.proteins.resize(size);
          for (size_t pos = 0; pos < size; ++pos) {
            occ.proteins[pos] = set[canon.canonical_to_original[pos]];
          }
          it->second.occurrences.push_back(std::move(occ));
        };
        if (shared_canon.has_value()) {
          // Chunk-local L1 in front of the shared table: one hash probe on
          // the 64-bit adjacency key per emission, one shared lookup per
          // distinct pattern per chunk. Pointers are stable for the cache's
          // lifetime, so caching them is safe.
          std::unordered_map<uint64_t, const CanonicalResult*> memo;
          esu_internal::RunEsu(
              index, config.size, static_cast<VertexId>(lo),
              static_cast<VertexId>(hi), [&](const VertexId* set, size_t size) {
                ObsIncrement(kObsSubgraphs);
                const uint64_t bits = index.InducedBits(set, size);
                auto [it, inserted] = memo.try_emplace(bits, nullptr);
                if (inserted) {
                  ObsIncrement(kObsCanonMisses);
                  it->second = &shared_canon->Lookup(bits);
                } else {
                  ObsIncrement(kObsCanonHits);
                }
                record(set, size, *it->second);
                return true;
              });
        } else {
          CanonicalResultCache canon_cache;
          esu_internal::RunEsu(
              index, config.size, static_cast<VertexId>(lo),
              static_cast<VertexId>(hi), [&](const VertexId* set, size_t size) {
                ObsIncrement(kObsSubgraphs);
                const SmallGraph sub = SmallGraph::InducedSubgraph(
                    graph, std::vector<VertexId>(set, set + size));
                record(set, size, canon_cache.ResultFor(sub));
                return true;
              });
        }
        partials[chunk] = std::move(local);
      });
      for (ClassMap& part : partials) MergeClassMap(&classes, std::move(part));
      if (ckpt.enabled()) ckpt.Save(EncodeEnumState(ghi, classes));
    }
  }

  for (auto it = classes.begin(); it != classes.end();) {
    if (it->second.occurrences.size() < config.min_frequency) {
      it = classes.erase(it);
    } else {
      ++it;
    }
  }
  LAMO_LOG(Debug) << classes.size() << " size-" << config.size
                  << " classes pass frequency >= " << config.min_frequency;

  // Uniqueness ensemble: one randomized network per task, each on its own
  // deterministic Rng substream so the ensemble is identical whether the
  // replicates run serially, in parallel, or split across a resumed run
  // (the per-class win counts are exact integer sums, so replicate groups
  // accumulate in any grouping to the same totals).
  std::map<std::vector<uint8_t>, size_t> wins;
  {
    const ScopedTimer timer("uniqueness");
    std::vector<const std::vector<uint8_t>*> codes;
    std::vector<size_t> real_frequencies;
    codes.reserve(classes.size());
    for (const auto& [code, entry] : classes) {
      codes.push_back(&code);
      real_frequencies.push_back(entry.occurrences.size());
    }
    const StageCheckpointer ckpt(config.checkpoint, "mine_uniq_" + size_tag,
                                 fingerprint);
    std::vector<uint64_t> win_counts(codes.size(), 0);
    size_t next_replicate = 0;
    std::string payload;
    if (ckpt.TryLoad(&payload)) {
      size_t restored_replicate = 0;
      std::vector<uint64_t> restored;
      const Status status = DecodeWinState(payload, codes.size(),
                                           &restored_replicate, &restored);
      if (status.ok() && restored_replicate <= config.num_random_networks) {
        win_counts = std::move(restored);
        next_replicate = restored_replicate;
      } else {
        ckpt.RecordDecodeFailure();
      }
    }
    ckpt.RecordChunks(config.num_random_networks, next_replicate);
    const size_t replicates_per_group =
        ckpt.enabled() ? std::max<size_t>(1, config.checkpoint.every)
                       : std::max<size_t>(1, config.num_random_networks);
    for (size_t rlo = next_replicate; rlo < config.num_random_networks;
         rlo += replicates_per_group) {
      FaultHit(kFpUniqReplicate);
      const size_t rhi =
          std::min(config.num_random_networks, rlo + replicates_per_group);
      const auto replicate_wins = ParallelMap(rhi - rlo, 1, [&](size_t i) {
        const size_t r = rlo + i;
        const ScopedItemTimer item(kSpanReplicate, kHistReplicateUs, r, 0, 1);
        ObsIncrement(kObsReplicates);
        ObsAdd(kObsPatternTests, codes.size());
        Rng rng = Rng::Stream(config.seed, r);
        const Graph randomized =
            DegreePreservingRewire(graph, config.swaps_per_edge, rng);
        // Replicates resolve canonical codes through the run-wide shared
        // table: the randomized networks repeat the same adjacency patterns
        // as the real one, so past the first replicate virtually every
        // pattern is already resident.
        const auto random_counts = CountSubgraphClasses(
            randomized, config.size,
            shared_canon.has_value() ? &*shared_canon : nullptr);
        std::vector<uint8_t> won(codes.size(), 0);
        for (size_t c = 0; c < codes.size(); ++c) {
          auto it = random_counts.find(*codes[c]);
          const size_t random_frequency =
              it == random_counts.end() ? 0 : it->second;
          won[c] = real_frequencies[c] >= random_frequency ? 1 : 0;
        }
        return won;
      });
      for (const auto& won : replicate_wins) {
        for (size_t c = 0; c < codes.size(); ++c) win_counts[c] += won[c];
      }
      if (ckpt.enabled()) ckpt.Save(EncodeWinState(rhi, win_counts));
    }
    for (size_t c = 0; c < codes.size(); ++c) {
      wins[*codes[c]] = static_cast<size_t>(win_counts[c]);
    }
  }

  std::vector<Motif> motifs;
  for (auto& [code, entry] : classes) {
    const double uniqueness =
        config.num_random_networks == 0
            ? -1.0
            : static_cast<double>(wins[code]) /
                  static_cast<double>(config.num_random_networks);
    if (config.num_random_networks > 0 &&
        uniqueness < config.uniqueness_threshold) {
      continue;
    }
    Motif motif;
    motif.pattern = entry.pattern;
    motif.code = code;
    motif.frequency = entry.occurrences.size();
    motif.uniqueness = uniqueness;
    motif.occurrences = std::move(entry.occurrences);
    motifs.push_back(std::move(motif));
  }
  return motifs;
}

}  // namespace lamo
