#include "motif/esu_finder.h"

#include <map>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"
#include "util/random.h"

namespace lamo {
namespace {

const size_t kObsSubgraphs = ObsCounterId("esu.subgraphs");
const size_t kObsCanonHits = ObsCounterId("esu.canon_cache_hits");
const size_t kObsCanonMisses = ObsCounterId("esu.canon_cache_misses");
const size_t kObsReplicates = ObsCounterId("uniqueness.replicates");
const size_t kObsPatternTests = ObsCounterId("uniqueness.pattern_tests");
/// Same per-item instruments as the dedicated mining/uniqueness passes: the
/// ESU finder runs both phases internally, so its chunks and replicates feed
/// the shared histograms and span names.
const size_t kHistChunkUs = ObsHistogramId("esu.chunk_us");
const size_t kSpanChunk = ObsSpanId("esu.chunk");
const size_t kHistReplicateUs = ObsHistogramId("uniqueness.replicate_us");
const size_t kSpanReplicate = ObsSpanId("uniqueness.replicate");

/// Chunk-local memo from raw adjacency bits to the full canonicalization
/// result (code, canonical graph, permutation). Same determinism argument as
/// the code-only cache in esu.cc: Canonicalize is a pure function of the
/// induced subgraph, and the cache never crosses a chunk boundary.
class CanonicalResultCache {
 public:
  const CanonicalResult& ResultFor(const SmallGraph& sub) {
    const std::vector<uint8_t> key = sub.AdjacencyCode();
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ObsIncrement(kObsCanonHits);
      return it->second;
    }
    ObsIncrement(kObsCanonMisses);
    return memo_.emplace(key, Canonicalize(sub)).first->second;
  }

 private:
  std::map<std::vector<uint8_t>, CanonicalResult> memo_;
};

}  // namespace

std::vector<Motif> FindNetworkMotifsEsu(const Graph& graph,
                                        const EsuMotifConfig& config) {
  struct ClassEntry {
    SmallGraph pattern{0};
    std::vector<MotifOccurrence> occurrences;
  };
  using ClassMap = std::map<std::vector<uint8_t>, ClassEntry>;

  // Enumeration is sharded by ESU root vertex; per-chunk class maps are
  // merged in chunk order, which reproduces the serial occurrence order
  // (roots ascending, DFS order within a root) for any thread count.
  const size_t n = graph.num_vertices();
  ClassMap classes;
  {
    const ScopedTimer timer("esu_enumeration");
    classes = ParallelReduce<ClassMap>(
      n, EsuRootGrain(n), ClassMap{},
      [&](size_t lo, size_t hi) {
        const ScopedItemTimer item(kSpanChunk, kHistChunkUs, lo, hi, 2);
        ClassMap local;
        CanonicalResultCache canon_cache;
        EnumerateConnectedSubgraphsInRootRange(
            graph, config.size, static_cast<VertexId>(lo),
            static_cast<VertexId>(hi), [&](const std::vector<VertexId>& set) {
              ObsIncrement(kObsSubgraphs);
              const SmallGraph sub = SmallGraph::InducedSubgraph(graph, set);
              const CanonicalResult& canon = canon_cache.ResultFor(sub);
              auto [it, inserted] = local.try_emplace(canon.code);
              if (inserted) it->second.pattern = canon.graph;
              MotifOccurrence occ;
              occ.proteins.resize(set.size());
              for (size_t pos = 0; pos < set.size(); ++pos) {
                occ.proteins[pos] = set[canon.canonical_to_original[pos]];
              }
              it->second.occurrences.push_back(std::move(occ));
              return true;
            });
        return local;
      },
      [](ClassMap acc, ClassMap part) {
        for (auto& [code, entry] : part) {
          auto [it, inserted] = acc.try_emplace(code, std::move(entry));
          if (!inserted) {
            auto& dst = it->second.occurrences;
            auto& src = entry.occurrences;
            dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                       std::make_move_iterator(src.end()));
          }
        }
        return acc;
      });
  }

  for (auto it = classes.begin(); it != classes.end();) {
    if (it->second.occurrences.size() < config.min_frequency) {
      it = classes.erase(it);
    } else {
      ++it;
    }
  }
  LAMO_LOG(Debug) << classes.size() << " size-" << config.size
                  << " classes pass frequency >= " << config.min_frequency;

  // Uniqueness ensemble: one randomized network per task, each on its own
  // deterministic Rng substream so the ensemble is identical whether the
  // replicates run serially or in parallel.
  std::map<std::vector<uint8_t>, size_t> wins;
  {
    const ScopedTimer timer("uniqueness");
    std::vector<const std::vector<uint8_t>*> codes;
    std::vector<size_t> real_frequencies;
    codes.reserve(classes.size());
    for (const auto& [code, entry] : classes) {
      codes.push_back(&code);
      real_frequencies.push_back(entry.occurrences.size());
    }
    const auto replicate_wins = ParallelMap(
        config.num_random_networks, 1, [&](size_t r) {
          const ScopedItemTimer item(kSpanReplicate, kHistReplicateUs, r, 0, 1);
          ObsIncrement(kObsReplicates);
          ObsAdd(kObsPatternTests, codes.size());
          Rng rng = Rng::Stream(config.seed, r);
          const Graph randomized =
              DegreePreservingRewire(graph, config.swaps_per_edge, rng);
          const auto random_counts =
              CountSubgraphClasses(randomized, config.size);
          std::vector<uint8_t> won(codes.size(), 0);
          for (size_t c = 0; c < codes.size(); ++c) {
            auto it = random_counts.find(*codes[c]);
            const size_t random_frequency =
                it == random_counts.end() ? 0 : it->second;
            won[c] = real_frequencies[c] >= random_frequency ? 1 : 0;
          }
          return won;
        });
    for (const auto& won : replicate_wins) {
      for (size_t c = 0; c < codes.size(); ++c) wins[*codes[c]] += won[c];
    }
  }

  std::vector<Motif> motifs;
  for (auto& [code, entry] : classes) {
    const double uniqueness =
        config.num_random_networks == 0
            ? -1.0
            : static_cast<double>(wins[code]) /
                  static_cast<double>(config.num_random_networks);
    if (config.num_random_networks > 0 &&
        uniqueness < config.uniqueness_threshold) {
      continue;
    }
    Motif motif;
    motif.pattern = entry.pattern;
    motif.code = code;
    motif.frequency = entry.occurrences.size();
    motif.uniqueness = uniqueness;
    motif.occurrences = std::move(entry.occurrences);
    motifs.push_back(std::move(motif));
  }
  return motifs;
}

}  // namespace lamo
