#include "motif/esu_finder.h"

#include <map>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "util/logging.h"
#include "util/random.h"

namespace lamo {

std::vector<Motif> FindNetworkMotifsEsu(const Graph& graph,
                                        const EsuMotifConfig& config) {
  struct ClassEntry {
    SmallGraph pattern{0};
    std::vector<MotifOccurrence> occurrences;
  };
  std::map<std::vector<uint8_t>, ClassEntry> classes;
  EnumerateConnectedSubgraphs(
      graph, config.size, [&](const std::vector<VertexId>& set) {
        const SmallGraph sub = SmallGraph::InducedSubgraph(graph, set);
        const CanonicalResult canon = Canonicalize(sub);
        auto [it, inserted] = classes.try_emplace(canon.code);
        if (inserted) it->second.pattern = canon.graph;
        MotifOccurrence occ;
        occ.proteins.resize(set.size());
        for (size_t pos = 0; pos < set.size(); ++pos) {
          occ.proteins[pos] = set[canon.canonical_to_original[pos]];
        }
        it->second.occurrences.push_back(std::move(occ));
        return true;
      });

  for (auto it = classes.begin(); it != classes.end();) {
    if (it->second.occurrences.size() < config.min_frequency) {
      it = classes.erase(it);
    } else {
      ++it;
    }
  }
  LAMO_LOG(Debug) << classes.size() << " size-" << config.size
                  << " classes pass frequency >= " << config.min_frequency;

  std::map<std::vector<uint8_t>, size_t> wins;
  Rng rng(config.seed);
  for (size_t r = 0; r < config.num_random_networks; ++r) {
    const Graph randomized =
        DegreePreservingRewire(graph, config.swaps_per_edge, rng);
    const auto random_counts = CountSubgraphClasses(randomized, config.size);
    for (const auto& [code, entry] : classes) {
      auto it = random_counts.find(code);
      const size_t random_frequency =
          it == random_counts.end() ? 0 : it->second;
      if (entry.occurrences.size() >= random_frequency) ++wins[code];
    }
  }

  std::vector<Motif> motifs;
  for (auto& [code, entry] : classes) {
    const double uniqueness =
        config.num_random_networks == 0
            ? -1.0
            : static_cast<double>(wins[code]) /
                  static_cast<double>(config.num_random_networks);
    if (config.num_random_networks > 0 &&
        uniqueness < config.uniqueness_threshold) {
      continue;
    }
    Motif motif;
    motif.pattern = entry.pattern;
    motif.code = code;
    motif.frequency = entry.occurrences.size();
    motif.uniqueness = uniqueness;
    motif.occurrences = std::move(entry.occurrences);
    motifs.push_back(std::move(motif));
  }
  return motifs;
}

}  // namespace lamo
