#ifndef LAMO_MOTIF_ESU_ENGINE_H_
#define LAMO_MOTIF_ESU_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph_index.h"
#include "util/logging.h"

namespace lamo {
namespace esu_internal {

/// Allocation-free ESU walk over a GraphIndex — the index-centric successor
/// of the pointer-chasing EsuEnumerator in esu.cc (kept there as the
/// legacy reference the differential battery diffs against). Same recursion
/// tree, same emission order, zero heap traffic per tree node:
///
///  * the per-node `next_extension` vector copies become appends to one
///    flat extension stack addressed by (begin, end) index frames;
///  * the exclusive-neighborhood test "u is in, or adjacent to, the current
///    subgraph" becomes a single bit probe into a per-depth *forbidden*
///    bitset (subgraph ∪ N(subgraph)), maintained incrementally with one
///    word-parallel row OR per tree node when the index is dense;
///  * without the dense bitset (n > GraphIndex::kDenseVertexLimit) the
///    forbidden set is kept as a per-depth sorted vertex list instead, and
///    exclusive neighbors fall out of one sorted-neighbor difference walk
///    of N(w) against it (same merge kernel family as
///    GraphIndex::IntersectSorted);
///  * the deepest recursion level — the overwhelming majority of tree
///    nodes — emits candidates directly without building their extension
///    or forbidden state at all.
///
/// Equivalence to the legacy walk: candidates inherited from the parent
/// frame are, by the ESU invariant, adjacent to the current subgraph, so
/// the legacy `u not already in next_extension` membership scan can never
/// fire once "not in forbidden" holds; everything else is a 1:1
/// transliteration. The 100-graph differential test pins this.
///
/// `Emit` is invoked as emit(const VertexId* set, size_t k) with the vertex
/// set in ascending order; returning false aborts the whole enumeration
/// (matching the public callback contract).
template <typename Emit>
class Engine {
 public:
  Engine(const GraphIndex& index, size_t k, Emit emit)
      : index_(index),
        k_(k),
        words_(index.words_per_row()),
        emit_(std::move(emit)),
        subgraph_(k == 0 ? 0 : k),
        sorted_(k == 0 ? 0 : k) {
    if (k_ > 2) {
      // Depth d < k-2 needs a forbidden set for its children; the last two
      // levels never probe one.
      if (index_.dense()) {
        forbidden_.assign((k_ - 2) * words_, 0);
      } else {
        forbidden_lists_.resize(k_ - 2);
      }
    }
  }

  /// Enumerates all connected size-k sets rooted (at their minimum vertex)
  /// in [root_begin, root_end). Returns false iff emit aborted.
  bool RunRoots(VertexId root_begin, VertexId root_end) {
    const size_t n = index_.num_vertices();
    if (k_ == 0 || k_ > n) return true;
    root_end = std::min<VertexId>(root_end, static_cast<VertexId>(n));
    for (VertexId v = root_begin; v < root_end; ++v) {
      subgraph_[0] = v;
      if (k_ == 1) {
        if (!EmitSet()) return false;
        continue;
      }
      // Neighbors are sorted, so the upward half (u > v) is a suffix.
      const auto nbrs = index_.Neighbors(v);
      extension_.assign(std::upper_bound(nbrs.begin(), nbrs.end(), v),
                        nbrs.end());
      if (k_ > 2) {
        if (index_.dense()) {
          // forbidden({v}) = {v} ∪ N(v).
          uint64_t* row = ForbiddenRow(0);
          const uint64_t* adj = index_.Row(v);
          for (size_t w = 0; w < words_; ++w) row[w] = adj[w];
          row[v >> 6] |= uint64_t{1} << (v & 63);
        } else {
          // Only vertices > root can ever be candidates, so the sorted
          // forbidden list keeps just that suffix (v itself is <= root).
          std::vector<VertexId>& list = forbidden_lists_[0];
          list.assign(extension_.begin(), extension_.end());
        }
      }
      if (!Extend(1, 0, extension_.size(), v)) return false;
    }
    return true;
  }

 private:
  uint64_t* ForbiddenRow(size_t depth) {
    return forbidden_.data() + depth * words_;
  }

  static bool TestBit(const uint64_t* row, VertexId u) {
    return (row[u >> 6] >> (u & 63)) & 1;
  }

  /// Sorts the k subgraph vertices into sorted_ and emits.
  bool EmitSet() {
    for (size_t i = 0; i < k_; ++i) {
      const VertexId v = subgraph_[i];
      size_t j = i;
      for (; j > 0 && sorted_[j - 1] > v; --j) sorted_[j] = sorted_[j - 1];
      sorted_[j] = v;
    }
    return emit_(sorted_.data(), k_);
  }

  /// Extends a subgraph of `size` vertices with candidates
  /// extension_[ext_begin, ext_end). Frames are index-based: the flat
  /// extension stack may reallocate while children append to it.
  bool Extend(size_t size, size_t ext_begin, size_t ext_end, VertexId root) {
    if (size + 1 == k_) {
      // Leaf level: each candidate completes a size-k set; no child state.
      for (size_t i = ext_begin; i < ext_end; ++i) {
        subgraph_[size] = extension_[i];
        if (!EmitSet()) return false;
      }
      return true;
    }
    const bool build_forbidden = size + 2 < k_;
    for (size_t i = ext_begin; i < ext_end; ++i) {
      const VertexId w = extension_[i];
      subgraph_[size] = w;
      const size_t child_begin = extension_.size();
      // Remaining siblings stay candidates for the child (ESU).
      for (size_t j = i + 1; j < ext_end; ++j) {
        extension_.push_back(extension_[j]);
      }
      // Exclusive neighbors of w: > root and outside subgraph ∪ N(subgraph).
      const auto nbrs = index_.Neighbors(w);
      if (index_.dense()) {
        const uint64_t* forb = ForbiddenRow(size - 1);
        for (const VertexId u : nbrs) {
          if (u > root && !TestBit(forb, u)) extension_.push_back(u);
        }
        if (build_forbidden) {
          uint64_t* child = ForbiddenRow(size);
          const uint64_t* adj = index_.Row(w);
          for (size_t t = 0; t < words_; ++t) child[t] = forb[t] | adj[t];
          child[w >> 6] |= uint64_t{1} << (w & 63);
        }
      } else {
        // Sorted difference walk: N(w) (ascending) against the ascending
        // forbidden list — both cursors only move forward.
        const std::vector<VertexId>& forb = forbidden_lists_[size - 1];
        size_t cursor = 0;
        for (const VertexId u : nbrs) {
          if (u <= root) continue;
          while (cursor < forb.size() && forb[cursor] < u) ++cursor;
          if (cursor < forb.size() && forb[cursor] == u) continue;
          extension_.push_back(u);
        }
        if (build_forbidden) {
          // child forbidden = forb ∪ {w} ∪ {u ∈ N(w) : u > root}, merged in
          // one ascending pass (w itself is already in forb: it was an
          // extension candidate, hence adjacent to the subgraph).
          std::vector<VertexId>& child = forbidden_lists_[size];
          child.clear();
          size_t fi = 0;
          size_t ni = 0;
          while (ni < nbrs.size() && nbrs[ni] <= root) ++ni;
          while (fi < forb.size() || ni < nbrs.size()) {
            VertexId next;
            if (ni == nbrs.size() ||
                (fi < forb.size() && forb[fi] <= nbrs[ni])) {
              next = forb[fi++];
              if (ni < nbrs.size() && nbrs[ni] == next) ++ni;  // dedup
            } else {
              next = nbrs[ni++];
            }
            child.push_back(next);
          }
        }
      }
      const bool keep_going =
          Extend(size + 1, child_begin, extension_.size(), root);
      extension_.resize(child_begin);
      if (!keep_going) return false;
    }
    return true;
  }

  const GraphIndex& index_;
  const size_t k_;
  const size_t words_;
  Emit emit_;
  std::vector<VertexId> subgraph_;  // DFS order, size k
  std::vector<VertexId> sorted_;    // ascending copy for emission
  std::vector<VertexId> extension_;  // flat stack of per-depth frames
  std::vector<uint64_t> forbidden_;  // dense: (k-2) rows of n bits
  std::vector<std::vector<VertexId>> forbidden_lists_;  // sparse fallback
};

/// Deduces Emit so call sites read naturally.
template <typename Emit>
bool RunEsu(const GraphIndex& index, size_t k, VertexId root_begin,
            VertexId root_end, Emit&& emit) {
  Engine<std::decay_t<Emit>> engine(index, k, std::forward<Emit>(emit));
  return engine.RunRoots(root_begin, root_end);
}

}  // namespace esu_internal
}  // namespace lamo

#endif  // LAMO_MOTIF_ESU_ENGINE_H_
