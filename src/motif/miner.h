#ifndef LAMO_MOTIF_MINER_H_
#define LAMO_MOTIF_MINER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "util/checkpoint.h"
#include "util/status.h"

namespace lamo {

/// Parameters of the frequent-subgraph miner.
struct MinerConfig {
  /// Smallest pattern size reported.
  size_t min_size = 3;
  /// Largest pattern size grown to. The paper mines up to meso-scale
  /// (size 20).
  size_t max_size = 10;
  /// Minimum number of distinct occurrences (vertex sets) for a pattern to
  /// be considered repeated. The paper uses 100 on the BIND yeast network.
  size_t min_frequency = 100;
  /// Memory-control cap: stop collecting occurrences of a single pattern
  /// beyond this many (its frequency then records the cap as a lower bound).
  /// 0 = unlimited.
  size_t max_occurrences_per_pattern = 50000;
  /// Optional beam: keep at most this many most-frequent patterns per level
  /// before growing the next level. 0 = unlimited. NeMoFinder's repeated-tree
  /// partitioning plays the same role of taming level growth; a frequency
  /// beam is the equivalent lever for our occurrence-list grower.
  size_t max_patterns_per_level = 0;
  /// Crash-safe progress saves, one per completed level (stage
  /// "mine_levels"): a resumed run restarts from the last saved level and
  /// produces byte-identical results (every level is a deterministic
  /// function of the previous one).
  CheckpointOptions checkpoint;
};

/// Level-wise frequent connected-subgraph miner over a single large graph,
/// in the spirit of NeMoFinder [Chen et al., SIGKDD 2006]: patterns of size
/// k+1 are grown from the occurrence lists of frequent size-k patterns by
/// extending each occurrence with a neighboring vertex, deduplicating vertex
/// sets, and grouping by canonical form. Frequency is the F1 measure
/// (distinct vertex sets, overlaps allowed) used by NeMoFinder.
///
/// Growth from occurrence lists is exhaustive under downward closure (every
/// frequent (k+1)-pattern has a size-k sub-occurrence inside a frequent
/// size-k pattern); tests cross-check completeness against exhaustive ESU
/// for small k.
class FrequentSubgraphMiner {
 public:
  /// `graph` must outlive the miner.
  FrequentSubgraphMiner(const Graph& graph, MinerConfig config);

  /// Runs the level-wise mining and returns all frequent patterns with sizes
  /// in [min_size, max_size], each with its occurrence list (D_g).
  /// Uniqueness is left unevaluated (-1); see uniqueness.h.
  std::vector<Motif> Mine();

 private:
  const Graph& graph_;
  MinerConfig config_;
};

}  // namespace lamo

#endif  // LAMO_MOTIF_MINER_H_
