#ifndef LAMO_MOTIF_ESU_FINDER_H_
#define LAMO_MOTIF_ESU_FINDER_H_

#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "util/checkpoint.h"

namespace lamo {

/// Configuration of the FANMOD-style per-size motif finder.
struct EsuMotifConfig {
  /// Subgraph size (this pipeline is per-size, like FANMOD/mfinder).
  size_t size = 4;
  /// Minimum occurrences for a class to be considered repeated.
  size_t min_frequency = 5;
  /// Randomized networks for the uniqueness test.
  size_t num_random_networks = 10;
  /// Edge swaps per edge when randomizing.
  double swaps_per_edge = 3.0;
  /// Classes below this uniqueness are dropped. Negative keeps everything
  /// (uniqueness still reported).
  double uniqueness_threshold = 0.95;
  uint64_t seed = 42;
  /// Crash-safe progress saves: the enumeration checkpoints per root-vertex
  /// chunk group (stage "mine_enum_<size>") and the uniqueness ensemble per
  /// replicate group (stage "mine_uniq_<size>"). Resumed runs are
  /// byte-identical to uninterrupted ones.
  CheckpointOptions checkpoint;
};

/// The FANMOD/mfinder route to network motifs: exhaustively enumerate all
/// connected size-k subgraphs with ESU, group them by canonical class, then
/// score uniqueness by re-enumerating each randomized network once and
/// comparing *all* class counts simultaneously. For small k this beats the
/// level-wise miner + per-motif VF2 counting (one enumeration per network
/// covers every candidate class); the level-wise miner wins when k is large
/// or only high-frequency patterns matter. The two pipelines cross-validate
/// each other in tests and are raced in bench_micro.
///
/// Occurrences are aligned to the canonical vertex order, so the result
/// feeds LaMoFinder directly.
std::vector<Motif> FindNetworkMotifsEsu(const Graph& graph,
                                        const EsuMotifConfig& config);

}  // namespace lamo

#endif  // LAMO_MOTIF_ESU_FINDER_H_
