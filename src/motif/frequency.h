#ifndef LAMO_MOTIF_FREQUENCY_H_
#define LAMO_MOTIF_FREQUENCY_H_

#include <cstddef>
#include <vector>

#include "motif/motif.h"

namespace lamo {

/// The three frequency concepts of single-graph subgraph mining
/// [Kuramochi & Karypis; Schreiber & Schwöbbermeyer]:
///
///  - F1: all distinct occurrences, arbitrary overlap allowed. This is what
///    NeMoFinder and this library's miner count — cheap, but not
///    anti-monotone under pattern extension.
///  - F2: a maximum set of edge-disjoint occurrences.
///  - F3: a maximum set of vertex-disjoint occurrences (the strictest;
///    anti-monotone, used when overlaps must not inflate support).
///
/// Maximum independent set is NP-hard, so F2/F3 are computed greedily
/// (occurrences ordered as given, each kept iff disjoint from all kept so
/// far) — a 1/k-approximation that is the standard practical choice.
enum class FrequencyMeasure { kF1AllOccurrences, kF2EdgeDisjoint, kF3VertexDisjoint };

/// Greedy count of pairwise vertex-disjoint occurrences.
size_t CountVertexDisjoint(const std::vector<MotifOccurrence>& occurrences);

/// Greedy count of pairwise edge-disjoint occurrences of `pattern` (two
/// occurrences may share vertices but not a mapped pattern edge).
size_t CountEdgeDisjoint(const SmallGraph& pattern,
                         const std::vector<MotifOccurrence>& occurrences);

/// Frequency of a motif under the chosen measure (F1 is
/// occurrences.size()).
size_t Frequency(const Motif& motif, FrequencyMeasure measure);

}  // namespace lamo

#endif  // LAMO_MOTIF_FREQUENCY_H_
