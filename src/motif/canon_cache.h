#ifndef LAMO_MOTIF_CANON_CACHE_H_
#define LAMO_MOTIF_CANON_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/canonical.h"
#include "graph/small_graph.h"

namespace lamo {

/// Cross-chunk, cross-replicate canonicalization memo shared by every worker
/// of a mining run. Induced size-k subgraphs repeat the same few adjacency
/// patterns millions of times; the per-chunk caches of PR 2 already ran at
/// ~98% hit rate but still paid one Canonicalize per pattern *per chunk*
/// (and per uniqueness replicate). This table pays it once per run.
///
/// Keys are the 64-bit upper-triangle adjacency packings produced by
/// GraphIndex::InducedBits — a pure function of the induced adjacency
/// pattern, independent of which host graph the pattern was found in, so one
/// table serves the real network and every randomized replicate. Values are
/// full CanonicalResults (code + canonical graph + permutation) with stable
/// addresses; Canonicalize is deterministic, so which thread computes an
/// entry can never change what any reader observes and pipeline output stays
/// byte-identical.
///
/// Two internal layouts, both safe for concurrent mixed lookup/insert:
///  * k <= 6 (<= 15 pair bits): a direct-mapped array of atomic pointers,
///    one slot per possible adjacency pattern — hits are a single acquire
///    load, no locks anywhere; racing inserts resolve by CAS (the loser
///    discards its copy of the identical value).
///  * 6 < k <= kMaxK: a hash table sharded 16 ways by key, one mutex per
///    shard; misses compute under the shard lock so each pattern is
///    canonicalized exactly once.
///
/// Obs counters (reported as esu.canon_shared_{lookups,hits,misses}) tick
/// once per Lookup, so lookups == hits + misses always — lamo_report_check
/// enforces this invariant on every run report.
class SharedCanonCache {
 public:
  /// Largest supported subgraph size: k * (k-1) / 2 must fit the 64-bit
  /// key with headroom (10 * 9 / 2 = 45 bits). Larger sizes fall back to
  /// the chunk-local byte-string caches.
  static constexpr size_t kMaxK = 10;

  /// A cache for size-`k` subgraphs (2 <= meaningful k <= kMaxK).
  explicit SharedCanonCache(size_t k);
  ~SharedCanonCache();

  SharedCanonCache(const SharedCanonCache&) = delete;
  SharedCanonCache& operator=(const SharedCanonCache&) = delete;

  size_t k() const { return k_; }

  /// The canonicalization of the k-vertex graph whose packed upper-triangle
  /// adjacency is `bits` (GraphIndex::InducedBits packing). The reference is
  /// stable for the lifetime of the cache.
  const CanonicalResult& Lookup(uint64_t bits);

  /// Rebuilds the SmallGraph encoded by `bits` (the inverse of
  /// GraphIndex::InducedBits for a vertex set mapped to 0..k-1).
  static SmallGraph UnpackBits(uint64_t bits, size_t k);

  /// Packs a SmallGraph back into the InducedBits key layout (test helper;
  /// requires g.num_vertices() <= kMaxK + 1).
  static uint64_t PackBits(const SmallGraph& g);

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<CanonicalResult>> entries;
  };

  const CanonicalResult& LookupDense(uint64_t bits);
  const CanonicalResult& LookupSharded(uint64_t bits);

  size_t k_ = 0;
  // Direct-mapped path (k <= 6): slot index == key.
  std::vector<std::atomic<const CanonicalResult*>> dense_;
  // Sharded path (k > 6).
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace lamo

#endif  // LAMO_MOTIF_CANON_CACHE_H_
