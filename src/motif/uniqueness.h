#ifndef LAMO_MOTIF_UNIQUENESS_H_
#define LAMO_MOTIF_UNIQUENESS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "util/checkpoint.h"
#include "util/random.h"

namespace lamo {

/// Parameters of the motif uniqueness test (Task 2 of motif finding).
struct UniquenessConfig {
  /// Number of degree-preserving randomized networks to compare against.
  size_t num_random_networks = 10;
  /// Edge swaps per edge when randomizing.
  double swaps_per_edge = 3.0;
  /// Seed for the randomization ensemble.
  uint64_t seed = 42;
  /// Crash-safe progress saves per replicate group (stage "uniqueness").
  /// Replicate r always draws Rng::Stream(seed, r), so a resumed ensemble
  /// is byte-identical to an uninterrupted one.
  CheckpointOptions checkpoint;
};

/// Evaluates the uniqueness s(g) of each motif in place: the number of
/// randomized networks in which g's real-network frequency is greater than
/// or equal to its frequency in the randomized network, over the total
/// number of randomized networks [Milo et al. 2002; Section 5.1 of the
/// paper]. Counting in each randomized network stops as soon as the real
/// frequency is exceeded, so rare patterns are cheap to test.
///
/// The ensemble runs on the parallel runtime, one randomized network per
/// task; replicate r draws from the deterministic substream
/// Rng::Stream(config.seed, r), so scores are reproducible and independent
/// of the thread count.
void EvaluateUniqueness(const Graph& graph, const UniquenessConfig& config,
                        std::vector<Motif>* motifs);

/// Keeps only motifs with uniqueness >= `threshold` (the paper keeps
/// > 0.95).
std::vector<Motif> FilterUnique(std::vector<Motif> motifs, double threshold);

/// One-call facade for Tasks 1+2: mines frequent patterns (miner.h) and
/// filters them by uniqueness, returning the network motifs the labeling
/// stage consumes.
struct MotifFindingConfig;
std::vector<Motif> FindNetworkMotifs(const Graph& graph,
                                     const struct MotifFindingConfig& config);

/// Combined configuration for FindNetworkMotifs.
struct MotifFindingConfig {
  /// Mining parameters (frequency threshold etc.).
  struct MinerParams {
    size_t min_size = 3;
    size_t max_size = 10;
    size_t min_frequency = 100;
    size_t max_occurrences_per_pattern = 50000;
    size_t max_patterns_per_level = 0;
  } miner;
  /// Uniqueness parameters.
  UniquenessConfig uniqueness;
  /// Motifs below this uniqueness are discarded (paper: > 0.95).
  double uniqueness_threshold = 0.95;
  /// Checkpointing, forwarded to both the miner ("mine_levels" stage) and
  /// the uniqueness ensemble ("uniqueness" stage).
  CheckpointOptions checkpoint;
};

}  // namespace lamo

#endif  // LAMO_MOTIF_UNIQUENESS_H_
