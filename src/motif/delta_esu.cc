#include "motif/delta_esu.h"

#include <algorithm>
#include <cassert>

namespace lamo {

size_t PairBitIndex(size_t i, size_t j, size_t k) {
  assert(i < j && j < k);
  // Pairs (i, j), i < j, in lexicographic order: rows 0..i-1 contribute
  // (k-1) + (k-2) + ... + (k-i) = i*(2k-i-1)/2 bits before row i starts.
  return i * (2 * k - i - 1) / 2 + (j - i - 1);
}

bool MaskConnected(uint64_t bits, size_t k) {
  if (k <= 1) return true;
  uint32_t visited = 1u;  // vertex 0
  uint32_t frontier = 1u;
  const uint32_t all = (k >= 32) ? ~0u : ((1u << k) - 1);
  while (frontier != 0) {
    uint32_t next = 0;
    for (size_t i = 0; i < k; ++i) {
      if ((frontier & (1u << i)) == 0) continue;
      for (size_t j = 0; j < k; ++j) {
        if (j == i || (visited & (1u << j)) != 0) continue;
        const size_t bit =
            i < j ? PairBitIndex(i, j, k) : PairBitIndex(j, i, k);
        if (bits & (uint64_t{1} << bit)) next |= 1u << j;
      }
    }
    visited |= next;
    frontier = next;
    if (visited == all) return true;
  }
  return visited == all;
}

namespace {

/// Recursive pair-anchored extension. `sub` holds the current subgraph
/// vertices in insertion order ({u, v} first); `ext` is the candidate list;
/// `forbidden` is the sorted union of sub and all neighbors of sub at the
/// time each vertex joined (Wernicke's exclusive-neighborhood rule).
struct PairEsu {
  const GraphIndex& index;
  VertexId anchor_u, anchor_v;
  size_t k;
  std::vector<PairSubgraph>* out;
  std::vector<VertexId> sub;
  std::vector<VertexId> sorted_verts;

  bool Forbidden(const std::vector<VertexId>& forbidden, VertexId w) const {
    return std::binary_search(forbidden.begin(), forbidden.end(), w);
  }

  void Emit() {
    sorted_verts.assign(sub.begin(), sub.end());
    std::sort(sorted_verts.begin(), sorted_verts.end());
    PairSubgraph ps;
    ps.verts = sorted_verts;
    ps.bits_with = index.InducedBits(sorted_verts.data(), k);
    // Position of the anchor pair within the sorted set.
    const size_t pu = static_cast<size_t>(
        std::lower_bound(sorted_verts.begin(), sorted_verts.end(),
                         std::min(anchor_u, anchor_v)) -
        sorted_verts.begin());
    const size_t pv = static_cast<size_t>(
        std::lower_bound(sorted_verts.begin(), sorted_verts.end(),
                         std::max(anchor_u, anchor_v)) -
        sorted_verts.begin());
    const uint64_t pair_bit = uint64_t{1} << PairBitIndex(pu, pv, k);
    ps.bits_without = ps.bits_with & ~pair_bit;
    ps.connected_without = k > 2 && MaskConnected(ps.bits_without, k);
    out->push_back(std::move(ps));
  }

  void Extend(std::vector<VertexId> ext, std::vector<VertexId> forbidden) {
    if (sub.size() == k) {
      Emit();
      return;
    }
    while (!ext.empty()) {
      const VertexId w = ext.back();
      ext.pop_back();
      std::vector<VertexId> next_ext = ext;
      std::vector<VertexId> next_forbidden = forbidden;
      // Exclusive neighbors of w extend the candidate pool; everything in
      // w's neighborhood becomes forbidden for deeper levels either way.
      for (const VertexId x : index.Neighbors(w)) {
        if (!Forbidden(forbidden, x)) {
          next_ext.push_back(x);
          next_forbidden.insert(
              std::lower_bound(next_forbidden.begin(), next_forbidden.end(),
                               x),
              x);
        }
      }
      sub.push_back(w);
      Extend(std::move(next_ext), std::move(next_forbidden));
      sub.pop_back();
    }
  }
};

}  // namespace

void EnumeratePairSubgraphs(const GraphIndex& index, VertexId u, VertexId v,
                            size_t k, std::vector<PairSubgraph>* out) {
  out->clear();
  assert(k >= 2 && k <= GraphIndex::kMaxInducedBitsVertices);
  assert(index.HasEdge(u, v));
  if (k == 2) {
    PairSubgraph ps;
    ps.verts = {std::min(u, v), std::max(u, v)};
    ps.bits_with = 1;
    ps.bits_without = 0;
    ps.connected_without = false;
    out->push_back(std::move(ps));
    return;
  }
  PairEsu esu{index, u, v, k, out, {}, {}};
  esu.sub = {u, v};
  // Seed forbidden = {u, v} ∪ N(u) ∪ N(v); seed ext = (N(u) ∪ N(v)) \ {u, v}.
  std::vector<VertexId> forbidden = {std::min(u, v), std::max(u, v)};
  std::vector<VertexId> ext;
  for (const VertexId seed : {u, v}) {
    for (const VertexId x : index.Neighbors(seed)) {
      if (!esu.Forbidden(forbidden, x)) {
        ext.push_back(x);
        forbidden.insert(
            std::lower_bound(forbidden.begin(), forbidden.end(), x), x);
      }
    }
  }
  esu.Extend(std::move(ext), std::move(forbidden));
}

}  // namespace lamo
