#ifndef LAMO_MOTIF_MOTIF_H_
#define LAMO_MOTIF_MOTIF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/small_graph.h"
#include "util/checkpoint.h"
#include "util/status.h"

namespace lamo {

/// One occurrence of a motif: the embedding aligned to the motif's canonical
/// vertex order. `proteins[i]` is the graph vertex (protein) playing the role
/// of canonical motif vertex i. The underlying vertex *set* identifies the
/// occurrence; the particular alignment is one representative of the
/// automorphism class (LaMoFinder explores the alternatives via the motif's
/// symmetric vertex sets).
struct MotifOccurrence {
  std::vector<VertexId> proteins;
};

/// A network motif: a connected subgraph pattern (in canonical form) that is
/// repeated in the network (frequency >= threshold) and unique (appears at a
/// higher frequency than in randomized networks). This is the paper's g with
/// its occurrence set D_g.
struct Motif {
  /// Canonical representative of the isomorphism class.
  SmallGraph pattern;
  /// Canonical code of `pattern` (hashable identity of the class).
  std::vector<uint8_t> code;
  /// D_g: distinct vertex sets inducing the pattern, one aligned embedding
  /// each.
  std::vector<MotifOccurrence> occurrences;
  /// Frequency |D_g| at mining time. Kept separately because occurrence
  /// lists may be capped for memory control, in which case frequency records
  /// the true (or lower-bounded) count.
  size_t frequency = 0;
  /// Uniqueness s(g): fraction of randomized networks in which g's frequency
  /// in the real network is >= its frequency in the randomized network
  /// [Milo et al.]. Filled by UniquenessTest; -1 if not evaluated.
  double uniqueness = -1.0;
  /// When non-empty, overrides the symmetric vertex sets derived from
  /// `pattern` (twin classes). Directed motifs use this: their occurrences
  /// are aligned to a *directed* canonical order whose symmetries the
  /// undirected pattern over-approximates, so the directed twin classes are
  /// attached here and the labeling stage honors them.
  std::vector<std::vector<uint32_t>> symmetric_sets_override;

  /// Number of vertices in the pattern.
  size_t size() const { return pattern.num_vertices(); }

  /// One-line summary for logs.
  std::string ToString() const;
};

/// Binary codecs used by checkpoint payloads (little-endian, bounds-checked
/// on decode). Encode(Decode(x)) is the identity; Decode rejects malformed
/// input with a Status instead of crashing.
void EncodeSmallGraph(const SmallGraph& g, ByteWriter* w);
Status DecodeSmallGraph(ByteReader* r, SmallGraph* g);
void EncodeMotif(const Motif& m, ByteWriter* w);
Status DecodeMotif(ByteReader* r, Motif* m);

}  // namespace lamo

#endif  // LAMO_MOTIF_MOTIF_H_
