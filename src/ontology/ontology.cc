#include "ontology/ontology.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace lamo {

const char* GoBranchName(GoBranch branch) {
  switch (branch) {
    case GoBranch::kMolecularFunction:
      return "molecular_function";
    case GoBranch::kBiologicalProcess:
      return "biological_process";
    case GoBranch::kCellularComponent:
      return "cellular_component";
  }
  return "?";
}

TermId OntologyBuilder::AddTerm(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<TermId>(names_.size() - 1);
}

Status OntologyBuilder::AddRelation(TermId child, TermId parent,
                                    RelationType relation) {
  if (child >= names_.size() || parent >= names_.size()) {
    return Status::InvalidArgument("relation endpoint out of range");
  }
  if (child == parent) {
    return Status::InvalidArgument("term cannot be its own parent");
  }
  relations_.emplace_back(child, parent, relation);
  return Status::OK();
}

StatusOr<Ontology> OntologyBuilder::Build() const {
  const size_t n = names_.size();
  if (n == 0) return Status::InvalidArgument("ontology has no terms");

  // Deduplicate relations (keeping the first relation type for a pair).
  std::set<std::pair<TermId, TermId>> seen;
  std::vector<std::tuple<TermId, TermId, RelationType>> relations;
  for (const auto& rel : relations_) {
    if (seen.emplace(std::get<0>(rel), std::get<1>(rel)).second) {
      relations.push_back(rel);
    }
  }
  std::sort(relations.begin(), relations.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });

  Ontology onto;
  onto.names_ = names_;

  // CSR for parents (relations sorted by child already).
  onto.parent_offsets_.assign(n + 1, 0);
  for (const auto& [child, parent, rel] : relations) {
    (void)parent;
    (void)rel;
    ++onto.parent_offsets_[child + 1];
  }
  for (size_t t = 1; t <= n; ++t) {
    onto.parent_offsets_[t] += onto.parent_offsets_[t - 1];
  }
  onto.parents_flat_.resize(relations.size());
  onto.parent_relations_flat_.resize(relations.size());
  {
    std::vector<size_t> cursor(onto.parent_offsets_.begin(),
                               onto.parent_offsets_.end() - 1);
    for (const auto& [child, parent, rel] : relations) {
      onto.parents_flat_[cursor[child]] = parent;
      onto.parent_relations_flat_[cursor[child]] = rel;
      ++cursor[child];
    }
  }

  // CSR for children.
  onto.child_offsets_.assign(n + 1, 0);
  for (const auto& [child, parent, rel] : relations) {
    (void)child;
    (void)rel;
    ++onto.child_offsets_[parent + 1];
  }
  for (size_t t = 1; t <= n; ++t) {
    onto.child_offsets_[t] += onto.child_offsets_[t - 1];
  }
  onto.children_flat_.resize(relations.size());
  {
    std::vector<size_t> cursor(onto.child_offsets_.begin(),
                               onto.child_offsets_.end() - 1);
    std::vector<std::tuple<TermId, TermId, RelationType>> by_parent =
        relations;
    std::sort(by_parent.begin(), by_parent.end(),
              [](const auto& a, const auto& b) {
                return std::tie(std::get<1>(a), std::get<0>(a)) <
                       std::tie(std::get<1>(b), std::get<0>(b));
              });
    for (const auto& [child, parent, rel] : by_parent) {
      (void)rel;
      onto.children_flat_[cursor[parent]++] = child;
    }
  }

  // Kahn topological sort: parents before children.
  std::vector<size_t> pending_parents(n);
  std::vector<TermId> queue;
  for (TermId t = 0; t < n; ++t) {
    pending_parents[t] = onto.Parents(t).size();
    if (pending_parents[t] == 0) {
      queue.push_back(t);
      onto.roots_.push_back(t);
    }
  }
  if (onto.roots_.empty()) {
    return Status::InvalidArgument("ontology DAG has no root (cycle)");
  }
  onto.depths_.assign(n, 0);
  while (!queue.empty()) {
    const TermId t = queue.back();
    queue.pop_back();
    onto.topo_order_.push_back(t);
    for (TermId c : onto.Children(t)) {
      onto.depths_[c] = std::max(onto.depths_[c], onto.depths_[t] + 1);
      if (--pending_parents[c] == 0) queue.push_back(c);
    }
  }
  if (onto.topo_order_.size() != n) {
    return Status::InvalidArgument("ontology contains a cycle");
  }

  // Ancestor closures (including self), in topological order.
  std::vector<std::vector<TermId>> ancestors(n);
  for (TermId t : onto.topo_order_) {
    std::set<TermId> closure;
    closure.insert(t);
    for (TermId p : onto.Parents(t)) {
      closure.insert(ancestors[p].begin(), ancestors[p].end());
    }
    ancestors[t].assign(closure.begin(), closure.end());
  }
  onto.ancestor_offsets_.assign(n + 1, 0);
  for (TermId t = 0; t < n; ++t) {
    onto.ancestor_offsets_[t + 1] =
        onto.ancestor_offsets_[t] + ancestors[t].size();
  }
  onto.ancestors_flat_.reserve(onto.ancestor_offsets_[n]);
  for (TermId t = 0; t < n; ++t) {
    onto.ancestors_flat_.insert(onto.ancestors_flat_.end(),
                                ancestors[t].begin(), ancestors[t].end());
  }
  return onto;
}

TermId Ontology::FindTerm(const std::string& name) const {
  for (TermId t = 0; t < names_.size(); ++t) {
    if (names_[t] == name) return t;
  }
  return kInvalidTerm;
}

bool Ontology::IsAncestorOrEqual(TermId ancestor, TermId term) const {
  const auto anc = AncestorsOf(term);
  return std::binary_search(anc.begin(), anc.end(), ancestor);
}

std::vector<TermId> Ontology::DescendantsOf(TermId t) const {
  std::set<TermId> closure;
  std::vector<TermId> stack{t};
  while (!stack.empty()) {
    const TermId cur = stack.back();
    stack.pop_back();
    if (!closure.insert(cur).second) continue;
    for (TermId c : Children(cur)) stack.push_back(c);
  }
  return {closure.begin(), closure.end()};
}

}  // namespace lamo
