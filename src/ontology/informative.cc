#include "ontology/informative.h"

namespace lamo {

InformativeClasses InformativeClasses::Compute(
    const Ontology& ontology, const AnnotationTable& annotations,
    const InformativeConfig& config) {
  InformativeClasses result;
  const size_t n = ontology.num_terms();
  const std::vector<size_t> direct = annotations.DirectCounts(n);

  result.informative_.assign(n, false);
  for (TermId t = 0; t < n; ++t) {
    if (direct[t] >= config.min_direct_proteins) {
      result.informative_[t] = true;
      result.informative_terms_.push_back(t);
    }
  }

  result.border_.assign(n, false);
  for (TermId t : result.informative_terms_) {
    bool has_informative_ancestor = false;
    for (TermId a : ontology.AncestorsOf(t)) {
      if (a != t && result.informative_[a]) {
        has_informative_ancestor = true;
        break;
      }
    }
    if (!has_informative_ancestor) {
      result.border_[t] = true;
      result.border_terms_.push_back(t);
    }
  }

  // A term is a label candidate iff some ancestor (self included) is border
  // informative.
  result.candidate_.assign(n, false);
  for (TermId t = 0; t < n; ++t) {
    for (TermId a : ontology.AncestorsOf(t)) {
      if (result.border_[a]) {
        result.candidate_[t] = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace lamo
