#ifndef LAMO_ONTOLOGY_INFORMATIVE_H_
#define LAMO_ONTOLOGY_INFORMATIVE_H_

#include <vector>

#include "ontology/annotation.h"
#include "ontology/ontology.h"

namespace lamo {

/// Configuration for the informative-functional-class rule.
struct InformativeConfig {
  /// Zhou et al.'s rule: a term is an informative FC if at least this many
  /// proteins are *directly* annotated with it. The paper uses 30.
  size_t min_direct_proteins = 30;
};

/// Partitions GO terms per Section 2 of the paper:
///  - *informative FC*: >= threshold directly-annotated proteins;
///  - *border informative FC*: informative FC with no informative proper
///    ancestor (used to stop label generalization before labels become "too
///    general");
///  - *label candidates*: border informative FCs and their descendants —
///    the only terms LaMoFinder may assign to motif vertices.
class InformativeClasses {
 public:
  InformativeClasses() = default;

  /// Computes all three classes from the genome's direct annotations.
  static InformativeClasses Compute(const Ontology& ontology,
                                    const AnnotationTable& annotations,
                                    const InformativeConfig& config = {});

  /// True iff `t` is an informative FC.
  bool IsInformative(TermId t) const { return informative_[t]; }

  /// True iff `t` is a border informative FC.
  bool IsBorderInformative(TermId t) const { return border_[t]; }

  /// True iff `t` may be used as a motif vertex label (border informative FC
  /// or descendant of one).
  bool IsLabelCandidate(TermId t) const { return candidate_[t]; }

  /// All border informative FCs, ascending.
  const std::vector<TermId>& BorderInformative() const {
    return border_terms_;
  }

  /// All informative FCs, ascending.
  const std::vector<TermId>& Informative() const { return informative_terms_; }

 private:
  // Snapshot serialization (serve/snapshot.cc) restores the precomputed
  // partition without re-deriving it from annotations.
  friend struct SnapshotAccess;

  std::vector<bool> informative_;
  std::vector<bool> border_;
  std::vector<bool> candidate_;
  std::vector<TermId> informative_terms_;
  std::vector<TermId> border_terms_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_INFORMATIVE_H_
