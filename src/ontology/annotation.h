#ifndef LAMO_ONTOLOGY_ANNOTATION_H_
#define LAMO_ONTOLOGY_ANNOTATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ontology/ontology.h"
#include "util/status.h"

namespace lamo {

/// Identifier of a protein (matches the VertexId of the PPI graph).
using ProteinId = uint32_t;

/// Maps proteins to their *direct* GO annotations within one ontology
/// branch. The PPI network is only partially labeled: proteins may have zero
/// annotations (3554 of the paper's 4141 yeast proteins had at least one),
/// and annotated proteins usually carry several terms (yeast average: 9.34).
class AnnotationTable {
 public:
  /// Creates an empty table for `num_proteins` proteins.
  explicit AnnotationTable(size_t num_proteins = 0)
      : annotations_(num_proteins) {}

  /// Number of proteins covered (annotated or not).
  size_t num_proteins() const { return annotations_.size(); }

  /// Adds a direct annotation (idempotent). Returns InvalidArgument for an
  /// out-of-range protein.
  Status Annotate(ProteinId p, TermId t);

  /// Direct annotations of `p`, sorted ascending; empty if unannotated.
  std::span<const TermId> TermsOf(ProteinId p) const {
    return annotations_[p];
  }

  /// True iff `p` has at least one direct annotation.
  bool IsAnnotated(ProteinId p) const { return !annotations_[p].empty(); }

  /// Number of proteins with >= 1 annotation.
  size_t CountAnnotated() const;

  /// Total number of annotation occurrences (sum of per-protein direct term
  /// counts) — the denominator of the Lord weight formula.
  size_t TotalOccurrences() const;

  /// Mean annotations per annotated protein.
  double MeanTermsPerAnnotatedProtein() const;

  /// Number of proteins *directly* annotated with each term (indexed by
  /// TermId; caller supplies the term universe size). This is the count Zhou
  /// et al.'s informative-FC rule thresholds on.
  std::vector<size_t> DirectCounts(size_t num_terms) const;

  /// True-path closure counts: occurrences[t] = number of annotation
  /// occurrences at t *or any of its descendants* (each direct annotation
  /// counted once per distinct ancestor, set semantics over the DAG). This is
  /// the numerator of the Lord weight.
  std::vector<size_t> ClosureCounts(const Ontology& ontology) const;

 private:
  // Snapshot serialization (serve/snapshot.cc) restores the per-protein term
  // lists directly instead of replaying Annotate calls.
  friend struct SnapshotAccess;

  std::vector<std::vector<TermId>> annotations_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_ANNOTATION_H_
