#ifndef LAMO_ONTOLOGY_SIMILARITY_H_
#define LAMO_ONTOLOGY_SIMILARITY_H_

#include <array>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/weights.h"

namespace lamo {

/// Lin-style GO term similarity (Eq. 1 of the paper):
///
///   ST(ta, tb) = 2 ln w(tab) / (ln w(ta) + ln w(tb))
///
/// where tab is the *lowest common parent*: among all common ancestors of ta
/// and tb, the one with the smallest weight (most informative). Varies in
/// [0, 1]; equals 1 for identical informative terms, 0 when the only shared
/// context is the root.
///
/// Pairwise results are memoized: occurrence-similarity computations reuse
/// the same term pairs heavily. The memo is sharded by key hash, each shard
/// behind its own mutex, so Similarity() is safe to call concurrently from
/// the parallel runtime; a pair raced by two threads is at worst computed
/// twice with the same (pure) result.
class TermSimilarity {
 public:
  /// Both references must outlive this object.
  TermSimilarity(const Ontology& ontology, const TermWeights& weights)
      : ontology_(ontology), weights_(weights) {}

  TermSimilarity(const TermSimilarity&) = delete;
  TermSimilarity& operator=(const TermSimilarity&) = delete;

  /// The lowest common parent tab of (ta, tb): the common ancestor (self
  /// included) of minimal weight; kInvalidTerm if the terms share no
  /// ancestor (distinct roots).
  TermId LowestCommonParent(TermId ta, TermId tb) const;

  /// ST(ta, tb) per Eq. 1, memoized. Thread-safe.
  double Similarity(TermId ta, TermId tb) const;

  /// Number of memoized pairs (diagnostics). Thread-safe.
  size_t cache_size() const;

  const Ontology& ontology() const { return ontology_; }
  const TermWeights& weights() const { return weights_; }

 private:
  // Shard count: enough to make contention negligible at typical thread
  // counts while keeping the per-instance footprint trivial.
  static constexpr size_t kCacheShards = 16;

  struct CacheShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, double> map;  // guarded by mu
  };

  double ComputeSimilarity(TermId ta, TermId tb) const;

  const Ontology& ontology_;
  const TermWeights& weights_;
  mutable std::array<CacheShard, kCacheShards> cache_shards_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_SIMILARITY_H_
