#ifndef LAMO_ONTOLOGY_SIMILARITY_H_
#define LAMO_ONTOLOGY_SIMILARITY_H_

#include <unordered_map>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/weights.h"

namespace lamo {

/// Lin-style GO term similarity (Eq. 1 of the paper):
///
///   ST(ta, tb) = 2 ln w(tab) / (ln w(ta) + ln w(tb))
///
/// where tab is the *lowest common parent*: among all common ancestors of ta
/// and tb, the one with the smallest weight (most informative). Varies in
/// [0, 1]; equals 1 for identical informative terms, 0 when the only shared
/// context is the root.
///
/// Pairwise results are memoized: occurrence-similarity computations reuse
/// the same term pairs heavily.
class TermSimilarity {
 public:
  /// Both references must outlive this object.
  TermSimilarity(const Ontology& ontology, const TermWeights& weights)
      : ontology_(ontology), weights_(weights) {}

  TermSimilarity(const TermSimilarity&) = delete;
  TermSimilarity& operator=(const TermSimilarity&) = delete;

  /// The lowest common parent tab of (ta, tb): the common ancestor (self
  /// included) of minimal weight; kInvalidTerm if the terms share no
  /// ancestor (distinct roots).
  TermId LowestCommonParent(TermId ta, TermId tb) const;

  /// ST(ta, tb) per Eq. 1, memoized.
  double Similarity(TermId ta, TermId tb) const;

  /// Number of memoized pairs (diagnostics).
  size_t cache_size() const { return cache_.size(); }

  const Ontology& ontology() const { return ontology_; }
  const TermWeights& weights() const { return weights_; }

 private:
  double ComputeSimilarity(TermId ta, TermId tb) const;

  const Ontology& ontology_;
  const TermWeights& weights_;
  mutable std::unordered_map<uint64_t, double> cache_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_SIMILARITY_H_
