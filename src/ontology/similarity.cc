#include "ontology/similarity.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace lamo {
namespace {

const size_t kObsMemoHits = ObsCounterId("similarity.memo_hits");
const size_t kObsMemoMisses = ObsCounterId("similarity.memo_misses");
/// Latency of the uncached LCA+IC computation (memo-miss path only; hits
/// are a map probe and would drown the histogram in zeros).
const size_t kHistComputeUs = ObsHistogramId("similarity.compute_us");
/// Times a shard mutex was found held by another thread (try_lock failed).
/// A contention *sample*, not a wait-time measure: it says how often the 16
/// shards actually collide at the current thread count.
const size_t kObsLockContention = ObsCounterId("similarity.lock_contention");

/// Locks `mu`, counting a contention sample if it was already held.
std::unique_lock<std::mutex> LockShard(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    ObsIncrement(kObsLockContention);
    lock.lock();
  }
  return lock;
}

}  // namespace

TermId TermSimilarity::LowestCommonParent(TermId ta, TermId tb) const {
  const auto anc_a = ontology_.AncestorsOf(ta);
  const auto anc_b = ontology_.AncestorsOf(tb);
  TermId best = kInvalidTerm;
  double best_weight = 2.0;
  // Both closures are sorted: linear merge intersection.
  auto it_a = anc_a.begin();
  auto it_b = anc_b.begin();
  while (it_a != anc_a.end() && it_b != anc_b.end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      const double weight = weights_.Weight(*it_a);
      if (weight < best_weight) {
        best_weight = weight;
        best = *it_a;
      }
      ++it_a;
      ++it_b;
    }
  }
  return best;
}

double TermSimilarity::Similarity(TermId ta, TermId tb) const {
  if (ta == tb) return 1.0;
  const uint64_t key = ta < tb
                           ? (static_cast<uint64_t>(ta) << 32) | tb
                           : (static_cast<uint64_t>(tb) << 32) | ta;
  // Mix the low bits so consecutive term ids spread across shards.
  CacheShard& shard =
      cache_shards_[(key ^ (key >> 32)) * 0x9E3779B97F4A7C15ULL >> 60];
  {
    const std::unique_lock<std::mutex> lock = LockShard(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ObsIncrement(kObsMemoHits);
      return it->second;
    }
  }
  ObsIncrement(kObsMemoMisses);
  // Computed outside the lock: ComputeSimilarity is pure, so a pair raced by
  // two threads just produces the same value twice.
  double sim;
  if (ObsEnabled()) {
    const auto t0 = std::chrono::steady_clock::now();
    sim = ComputeSimilarity(ta, tb);
    ObsObserve(kHistComputeUs,
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()));
  } else {
    sim = ComputeSimilarity(ta, tb);
  }
  const std::unique_lock<std::mutex> lock = LockShard(shard.mu);
  shard.map.emplace(key, sim);
  return sim;
}

size_t TermSimilarity::cache_size() const {
  size_t total = 0;
  for (const CacheShard& shard : cache_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

double TermSimilarity::ComputeSimilarity(TermId ta, TermId tb) const {
  const TermId tab = LowestCommonParent(ta, tb);
  if (tab == kInvalidTerm) return 0.0;  // different branches: unrelated
  const double log_ab = weights_.LogWeight(tab);
  const double denom = weights_.LogWeight(ta) + weights_.LogWeight(tb);
  if (denom == 0.0) {
    // Both terms weigh 1 (roots). They are distinct here (ta == tb was
    // handled), so they share no information.
    return 0.0;
  }
  double sim = 2.0 * log_ab / denom;
  if (sim < 0.0) sim = 0.0;
  if (sim > 1.0) sim = 1.0;
  return sim;
}

}  // namespace lamo
