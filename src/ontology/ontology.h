#ifndef LAMO_ONTOLOGY_ONTOLOGY_H_
#define LAMO_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "util/status.h"

namespace lamo {

/// Identifier of a GO term within one Ontology. Dense 0..n-1.
using TermId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// The two GO relationship kinds the paper models (Section 2): a child is an
/// instance ("is-a") or a component ("part-of") of its parent. Both induce
/// the same generalization semantics for labeling.
enum class RelationType : uint8_t { kIsA = 0, kPartOf = 1 };

/// The three GO branches ("domains"). The paper labels motifs once per
/// branch (function, process, location).
enum class GoBranch : uint8_t {
  kMolecularFunction = 0,
  kBiologicalProcess = 1,
  kCellularComponent = 2,
};

/// Returns "molecular_function" etc.
const char* GoBranchName(GoBranch branch);

class Ontology;

/// Incrementally constructs an Ontology. Terms are added first, then
/// child->parent relations; Build() validates acyclicity and precomputes the
/// transitive closures.
class OntologyBuilder {
 public:
  OntologyBuilder() = default;

  /// Adds a term and returns its id. Names need not be unique but usually
  /// are ("GO:0005634" or the paper's "G04").
  TermId AddTerm(std::string name);

  /// Declares `child` to be a direct child of `parent` via `relation`.
  /// Duplicate relations are deduplicated at Build.
  Status AddRelation(TermId child, TermId parent, RelationType relation);

  /// Number of terms added so far.
  size_t num_terms() const { return names_.size(); }

  /// Validates the DAG (no cycles, at least one root) and produces the
  /// immutable Ontology.
  StatusOr<Ontology> Build() const;

 private:
  std::vector<std::string> names_;
  // (child, parent, relation)
  std::vector<std::tuple<TermId, TermId, RelationType>> relations_;
};

/// An immutable GO-style ontology: a DAG of terms where edges point from
/// child to parent and a term may have multiple parents (Figure 1 of the
/// paper: G05 has both G02 and G03 as parents). Precomputes topological
/// order and per-term ancestor closures so that generalization tests
/// ("label is the same or more general than the annotation") are O(log n).
class Ontology {
 public:
  Ontology() = default;

  /// Number of terms.
  size_t num_terms() const { return names_.size(); }

  /// Display name of a term.
  const std::string& TermName(TermId t) const { return names_[t]; }

  /// Looks up a term by exact name; kInvalidTerm if absent (first match if
  /// names are not unique).
  TermId FindTerm(const std::string& name) const;

  /// Direct parents of `t`, ascending.
  std::span<const TermId> Parents(TermId t) const {
    return {parents_flat_.data() + parent_offsets_[t],
            parents_flat_.data() + parent_offsets_[t + 1]};
  }

  /// Relation to each direct parent, aligned with Parents(t).
  std::span<const RelationType> ParentRelations(TermId t) const {
    return {parent_relations_flat_.data() + parent_offsets_[t],
            parent_relations_flat_.data() + parent_offsets_[t + 1]};
  }

  /// Direct children of `t`, ascending.
  std::span<const TermId> Children(TermId t) const {
    return {children_flat_.data() + child_offsets_[t],
            children_flat_.data() + child_offsets_[t + 1]};
  }

  /// Terms with no parents (the branch roots).
  const std::vector<TermId>& Roots() const { return roots_; }

  /// Topological order with parents before children.
  const std::vector<TermId>& TopologicalOrder() const { return topo_order_; }

  /// Ancestor closure of `t`, *including t itself*, sorted ascending.
  std::span<const TermId> AncestorsOf(TermId t) const {
    return {ancestors_flat_.data() + ancestor_offsets_[t],
            ancestors_flat_.data() + ancestor_offsets_[t + 1]};
  }

  /// True iff `ancestor` equals `term` or lies on some upward path from it;
  /// i.e. `ancestor` is the same or more general than `term`.
  bool IsAncestorOrEqual(TermId ancestor, TermId term) const;

  /// Descendant closure of `t` including `t`, sorted ascending. Computed on
  /// demand (O(reachable set)).
  std::vector<TermId> DescendantsOf(TermId t) const;

  /// Number of terms in the longest root-to-t path (root depth 0).
  uint32_t Depth(TermId t) const { return depths_[t]; }

 private:
  friend class OntologyBuilder;
  // Snapshot serialization (serve/snapshot.cc) reads and restores the
  // precomputed closures directly so loading performs no Build() work.
  friend struct SnapshotAccess;

  std::vector<std::string> names_;
  std::vector<size_t> parent_offsets_;
  std::vector<TermId> parents_flat_;
  std::vector<RelationType> parent_relations_flat_;
  std::vector<size_t> child_offsets_;
  std::vector<TermId> children_flat_;
  std::vector<TermId> roots_;
  std::vector<TermId> topo_order_;
  std::vector<size_t> ancestor_offsets_;
  std::vector<TermId> ancestors_flat_;
  std::vector<uint32_t> depths_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_ONTOLOGY_H_
