#ifndef LAMO_ONTOLOGY_WEIGHTS_H_
#define LAMO_ONTOLOGY_WEIGHTS_H_

#include <vector>

#include "ontology/annotation.h"
#include "ontology/ontology.h"

namespace lamo {

/// Genome-specific GO term weights per Lord et al. (Section 2 of the paper):
/// w(t) = (#occurrences of t or any of its descendants in the genome's
/// annotations) / (total #annotation occurrences). The root weighs 1; rare,
/// specific terms weigh close to 0. These weights are the information
/// content that drives the Lin term similarity.
class TermWeights {
 public:
  TermWeights() = default;

  /// Computes weights for every term from the genome's annotations. Terms
  /// with zero occurrences receive a floor of 0.5/total so their
  /// log-weight stays finite (they are maximally informative).
  static TermWeights Compute(const Ontology& ontology,
                             const AnnotationTable& annotations);

  /// Weight w(t) in (0, 1].
  double Weight(TermId t) const { return weights_[t]; }

  /// ln w(t) in (-inf, 0].
  double LogWeight(TermId t) const { return log_weights_[t]; }

  /// Number of terms covered.
  size_t num_terms() const { return weights_.size(); }

 private:
  // Snapshot serialization (serve/snapshot.cc) restores precomputed weights
  // without re-deriving them from annotations.
  friend struct SnapshotAccess;

  std::vector<double> weights_;
  std::vector<double> log_weights_;
};

}  // namespace lamo

#endif  // LAMO_ONTOLOGY_WEIGHTS_H_
