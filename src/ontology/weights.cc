#include "ontology/weights.h"

#include <cmath>

#include "util/logging.h"

namespace lamo {

TermWeights TermWeights::Compute(const Ontology& ontology,
                                 const AnnotationTable& annotations) {
  TermWeights w;
  const size_t n = ontology.num_terms();
  w.weights_.resize(n);
  w.log_weights_.resize(n);
  const std::vector<size_t> closure = annotations.ClosureCounts(ontology);
  const size_t total = annotations.TotalOccurrences();
  LAMO_CHECK_GT(total, 0u);
  const double floor = 0.5 / static_cast<double>(total);
  for (TermId t = 0; t < n; ++t) {
    double weight =
        static_cast<double>(closure[t]) / static_cast<double>(total);
    if (weight <= 0.0) weight = floor;
    if (weight > 1.0) weight = 1.0;
    w.weights_[t] = weight;
    w.log_weights_[t] = std::log(weight);
  }
  return w;
}

}  // namespace lamo
