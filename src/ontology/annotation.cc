#include "ontology/annotation.h"

#include <algorithm>

namespace lamo {

Status AnnotationTable::Annotate(ProteinId p, TermId t) {
  if (p >= annotations_.size()) {
    return Status::InvalidArgument("protein id out of range");
  }
  auto& terms = annotations_[p];
  auto it = std::lower_bound(terms.begin(), terms.end(), t);
  if (it != terms.end() && *it == t) return Status::OK();
  terms.insert(it, t);
  return Status::OK();
}

size_t AnnotationTable::CountAnnotated() const {
  size_t count = 0;
  for (const auto& terms : annotations_) {
    if (!terms.empty()) ++count;
  }
  return count;
}

size_t AnnotationTable::TotalOccurrences() const {
  size_t total = 0;
  for (const auto& terms : annotations_) total += terms.size();
  return total;
}

double AnnotationTable::MeanTermsPerAnnotatedProtein() const {
  const size_t annotated = CountAnnotated();
  if (annotated == 0) return 0.0;
  return static_cast<double>(TotalOccurrences()) /
         static_cast<double>(annotated);
}

std::vector<size_t> AnnotationTable::DirectCounts(size_t num_terms) const {
  std::vector<size_t> counts(num_terms, 0);
  for (const auto& terms : annotations_) {
    for (TermId t : terms) ++counts[t];
  }
  return counts;
}

std::vector<size_t> AnnotationTable::ClosureCounts(
    const Ontology& ontology) const {
  std::vector<size_t> counts(ontology.num_terms(), 0);
  for (const auto& terms : annotations_) {
    for (TermId t : terms) {
      // One direct occurrence at t contributes to every ancestor of t
      // (including t), once each — exact set semantics even when the DAG
      // offers multiple upward paths.
      for (TermId a : ontology.AncestorsOf(t)) ++counts[a];
    }
  }
  return counts;
}

}  // namespace lamo
