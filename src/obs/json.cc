#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lamo {

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; the key already separated
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(uint64_t value) {
  Separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {  // JSON has no Inf/NaN
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a byte range.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* value) {
    SkipSpace();
    if (!ParseValue(value)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* value) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(value);
      case '[': return ParseArray(value);
      case '"':
        value->type = JsonValue::Type::kString;
        return ParseString(&value->string_value);
      case 't':
      case 'f': return ParseLiteral(value);
      case 'n': return ParseLiteral(value);
      default: return ParseNumber(value);
    }
  }

  bool ParseObject(JsonValue* value) {
    value->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      JsonValue member;
      if (!ParseValue(&member)) return false;
      value->members.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* value) {
    value->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      SkipSpace();
      JsonValue item;
      if (!ParseValue(&item)) return false;
      value->items.push_back(std::move(item));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        switch (text_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs are passed through unpaired; the
            // report writer never emits them).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseLiteral(JsonValue* value) {
    auto match = [&](const char* literal) {
      const size_t len = std::char_traits<char>::length(literal);
      if (text_.compare(pos_, len, literal) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      value->type = JsonValue::Type::kBool;
      value->bool_value = true;
      return true;
    }
    if (match("false")) {
      value->type = JsonValue::Type::kBool;
      value->bool_value = false;
      return true;
    }
    if (match("null")) {
      value->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* value) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (end == begin) return Fail("invalid number");
    value->type = JsonValue::Type::kNumber;
    value->number_value = parsed;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* value, std::string* error) {
  JsonParser parser(text, error);
  return parser.Parse(value);
}

}  // namespace lamo
