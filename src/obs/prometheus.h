#ifndef LAMO_OBS_PROMETHEUS_H_
#define LAMO_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/window.h"

namespace lamo {

/// ---- Prometheus text exposition ------------------------------------------
///
/// Renders the obs registry (counters, gauges, log2 histograms plus derived
/// window rates and percentiles) in the Prometheus text exposition format,
/// served by the METRICS wire verb of `lamo serve` and `lamo router`. The
/// router additionally parses each backend's exposition and re-exports the
/// series with `backend`/`shard` labels injected, so the parser half lives
/// here too (shared with tools/lamo_metrics_check).
///
/// Conventions:
///   * obs names map 1:1 to metric names: `serve.request_us` becomes
///     `lamo_serve_request_us` (non-alphanumerics to '_', `lamo_` prefix);
///   * counters keep the cumulative total under `<name>_total` and grow a
///     derived gauge family `<name>_per_sec{window="10s"|"60s"|"lifetime"}`;
///   * histograms emit classic cumulative `_bucket{le="..."}` series (upper
///     bounds are the inclusive log2 bucket bounds), `_sum`, `_count`, and
///     derived gauge families `<name>_p50/_p90/_p99{window=...}`;
///   * zero-valued counters and empty histograms are omitted — a scrape
///     reflects what the process actually did, and the router's own registry
///     contains the whole binary's instrumentation (esu.*, serve.*, ...)
///     at zero.

/// One metric family: a `# TYPE` header plus its sample lines (raw
/// exposition lines, label braces included, no trailing newline).
struct PromFamily {
  std::string name;
  std::string type;  ///< "counter", "gauge" or "histogram"
  std::vector<std::string> samples;
};

/// `lamo_` + obs name with every non-[a-zA-Z0-9_] byte replaced by '_'.
std::string PromMetricName(const std::string& obs_name);

/// Collects the full exposition of `sink` (nullable: renders only the uptime
/// family when no sink is installed). When `windows` is non-null it is
/// updated with the sink's merged snapshot at `now_ms` and the 10s/60s
/// window-derived families are included. `uptime_s`/`start_time_s` feed the
/// `lamo_uptime_seconds` / `lamo_start_time_seconds` gauges.
std::vector<PromFamily> CollectPromFamilies(const ObsSink* sink,
                                            MetricWindows* windows,
                                            uint64_t now_ms, double uptime_s,
                                            double start_time_s);

/// Renders families as exposition lines: each family contributes its
/// `# TYPE` header followed by its samples. Families without samples are
/// skipped.
std::vector<std::string> RenderPromLines(const std::vector<PromFamily>& families);

/// Parses exposition text (newline-separated; `# HELP` lines tolerated) back
/// into families. Every sample line must follow a `# TYPE` header it belongs
/// to (same name, or the `_bucket`/`_sum`/`_count` children of a histogram).
/// On failure returns false with a message in `*error`.
bool ParsePromFamilies(const std::string& text,
                       std::vector<PromFamily>* families, std::string* error);

/// Returns `sample` with `labels` (e.g. `backend="0",shard="0/2"`) injected
/// into its label set, creating one when absent.
std::string InjectPromLabels(const std::string& sample,
                             const std::string& labels);

/// Merges `from` into `*into`, injecting `labels` into every sample. Samples
/// join the existing family of the same name when present (the `# TYPE`
/// header is emitted once per family), otherwise the family is appended.
void MergePromFamilies(std::vector<PromFamily>* into,
                       const std::vector<PromFamily>& from,
                       const std::string& labels);

}  // namespace lamo

#endif  // LAMO_OBS_PROMETHEUS_H_
