#ifndef LAMO_OBS_TRACE_H_
#define LAMO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/status.h"

namespace lamo {

/// ---- Span tracer ---------------------------------------------------------
///
/// A low-overhead span tracer alongside the counter/histogram layer of
/// obs.h. Instrumented scopes record fixed-size events (span name id,
/// start/duration in µs, up to two numeric args) into per-thread ring
/// buffers owned by a process-wide `TraceCollector`; at flush time the
/// rings serialize into Chrome trace-event JSON, loadable in
/// `chrome://tracing` or the Perfetto UI. The CLI installs a collector
/// under `--trace <path>`.
///
/// Contract (same as ObsSink): disabled by default, and every instrumented
/// scope then costs one relaxed atomic load (ObsActiveMask covers both
/// layers at combined sites). Recording is lock-free — each thread appends
/// to its own ring; a full ring overwrites the oldest events and bumps the
/// `trace.dropped` counter instead of ever blocking the hot path.

/// Hard cap on distinct span names (same rationale as kMaxObsCounters).
constexpr size_t kMaxObsSpans = 64;

/// Default per-thread ring capacity, in events (~48 bytes each).
constexpr size_t kDefaultTraceEventsPerThread = 1 << 16;

/// Registers span `name` (idempotent) and returns its dense id. Call once
/// per instrumentation site via a namespace-scope initializer.
size_t ObsSpanId(const std::string& name);

/// All span names registered so far, indexed by span id.
std::vector<std::string> ObsSpanNames();

/// One completed span. Fixed-size so ring slots never allocate.
struct TraceEvent {
  uint32_t span_id = 0;
  uint8_t num_args = 0;
  uint64_t start_us = 0;  ///< relative to the collector's start time
  uint64_t dur_us = 0;
  uint64_t args[2] = {0, 0};
};

/// Collects spans from all threads into per-thread rings. Construct,
/// install with SetTraceCollector, run the pipeline, uninstall, then
/// serialize with ToJson/WriteFile. The destructor uninstalls the collector
/// if it is still the installed one.
///
/// Thread-safety: recording is owner-thread-only per ring (lock-free);
/// ToJson/DroppedEvents are safe once the parallel regions that recorded
/// spans have completed (the runtime's region join is the synchronization
/// point, exactly as for ObsSink snapshots).
class TraceCollector {
 public:
  explicit TraceCollector(
      size_t events_per_thread = kDefaultTraceEventsPerThread);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// One thread's ring. `next` is a monotone write index; live events are
  /// the last min(next, capacity) writes, so overflow drops oldest.
  struct Ring {
    uint32_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> slots;  // fixed capacity, set at registration
    uint64_t next = 0;              // owner-thread writes, post-join reads
  };

  /// The calling thread's ring, created and registered on first use.
  Ring* RingForCurrentThread();

  /// Records one span into the calling thread's ring.
  void Record(size_t span_id, uint64_t start_us, uint64_t dur_us,
              uint64_t arg0, uint64_t arg1, size_t num_args);

  /// Events lost to ring overflow, summed over threads.
  uint64_t DroppedEvents() const;

  /// Events recorded (including later-dropped ones), summed over threads.
  uint64_t RecordedEvents() const;

  /// Serializes all rings as Chrome trace-event JSON: one `ph:"X"`
  /// (complete) event per span with ts/dur in microseconds, plus `ph:"M"`
  /// thread_name metadata per thread and an `otherData` block with
  /// recorded/dropped totals.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (trailing newline added).
  Status WriteFile(const std::string& path) const;

  /// Microseconds since this collector was constructed.
  uint64_t NowMicros() const;

  /// Converts an absolute steady_clock time to collector-relative µs.
  uint64_t MicrosSinceStart(std::chrono::steady_clock::time_point t) const;

  /// Process-unique id; lets threads detect a collector swap and drop
  /// cached ring pointers (same scheme as ObsSink::epoch).
  uint64_t epoch() const { return epoch_; }

 private:
  const uint64_t epoch_;
  const std::chrono::steady_clock::time_point start_;
  const size_t events_per_thread_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Ring>> rings_;  // guarded by mu_
};

/// The installed collector, or nullptr when tracing is disabled.
TraceCollector* GetTraceCollector();

/// Installs `collector` process-wide (nullptr disables tracing). Same
/// ownership/quiescence contract as SetObsSink.
void SetTraceCollector(TraceCollector* collector);

/// True iff a collector is installed. One relaxed atomic load.
bool TraceEnabled();

/// Records a completed span on the installed collector; no-op when tracing
/// is disabled. `start`/`end` are absolute steady_clock times.
void TraceRecordSpan(size_t span_id,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     uint64_t arg0 = 0, uint64_t arg1 = 0,
                     size_t num_args = 0);

/// RAII span: records [construction, destruction) on the installed
/// collector. One relaxed load (plus a branch) when tracing is disabled —
/// safe in per-item loops, unlike ScopedTimer.
class ScopedSpan {
 public:
  explicit ScopedSpan(size_t span_id)
      : ScopedSpan(span_id, 0, 0, 0) {}
  ScopedSpan(size_t span_id, uint64_t arg0)
      : ScopedSpan(span_id, arg0, 0, 1) {}
  ScopedSpan(size_t span_id, uint64_t arg0, uint64_t arg1)
      : ScopedSpan(span_id, arg0, arg1, 2) {}
  ~ScopedSpan() {
    if (!active_) return;
    TraceRecordSpan(span_id_, start_, std::chrono::steady_clock::now(),
                    args_[0], args_[1], num_args_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Sets arg `i` (0 or 1) after construction, e.g. a count known only at
  /// scope exit. Expands num_args to cover `i`.
  void set_arg(size_t i, uint64_t value) {
    if (!active_ || i >= 2) return;
    args_[i] = value;
    if (num_args_ <= i) num_args_ = static_cast<uint8_t>(i + 1);
  }

 private:
  ScopedSpan(size_t span_id, uint64_t arg0, uint64_t arg1, size_t num_args)
      : active_(TraceEnabled()), span_id_(span_id),
        num_args_(static_cast<uint8_t>(num_args)), args_{arg0, arg1} {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  bool active_;
  size_t span_id_;
  uint8_t num_args_;
  uint64_t args_[2];
  std::chrono::steady_clock::time_point start_;
};

/// RAII per-item timer feeding both layers: on destruction the elapsed µs
/// goes into histogram `histogram_id` (when an ObsSink is installed) and a
/// span `span_id` (when a TraceCollector is installed). Costs exactly one
/// relaxed load when both are disabled — this is the instrument for the
/// per-item scopes ScopedTimer is too heavy for.
class ScopedItemTimer {
 public:
  ScopedItemTimer(size_t span_id, size_t histogram_id, uint64_t arg0 = 0,
                  uint64_t arg1 = 0, size_t num_args = 0)
      : mask_(ObsActiveMask()), span_id_(span_id),
        histogram_id_(histogram_id),
        num_args_(static_cast<uint8_t>(num_args)), args_{arg0, arg1} {
    if (mask_ != 0) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedItemTimer() {
    if (mask_ == 0) return;
    const auto end = std::chrono::steady_clock::now();
    if (mask_ & kObsSinkBit) {
      ObsObserve(histogram_id_,
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         end - start_)
                         .count()));
    }
    if (mask_ & kObsTraceBit) {
      TraceRecordSpan(span_id_, start_, end, args_[0], args_[1], num_args_);
    }
  }

  ScopedItemTimer(const ScopedItemTimer&) = delete;
  ScopedItemTimer& operator=(const ScopedItemTimer&) = delete;

  /// See ScopedSpan::set_arg.
  void set_arg(size_t i, uint64_t value) {
    if (mask_ == 0 || i >= 2) return;
    args_[i] = value;
    if (num_args_ <= i) num_args_ = static_cast<uint8_t>(i + 1);
  }

 private:
  uint8_t mask_;
  size_t span_id_;
  size_t histogram_id_;
  uint8_t num_args_;
  uint64_t args_[2];
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lamo

#endif  // LAMO_OBS_TRACE_H_
