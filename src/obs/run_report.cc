#include "obs/run_report.h"

#include <cinttypes>

#include "obs/json.h"
#include "util/atomic_io.h"

namespace lamo {
namespace {

/// Must match the counter registered in parallel/parallel_for.cc.
constexpr const char* kChunksCounter = "parallel.chunks";

void WritePhase(JsonWriter* json, const PhaseNode& phase) {
  json->BeginObject();
  json->Key("name");
  json->String(phase.name);
  json->Key("wall_ms");
  json->Double(phase.wall_ms);
  json->Key("children");
  json->BeginArray();
  for (const PhaseNode& child : phase.children) WritePhase(json, child);
  json->EndArray();
  json->EndObject();
}

/// Gauges reported = explicitly set gauges + rates derivable from counters.
std::map<std::string, double> DerivedGauges(
    const ObsSink& sink, const std::map<std::string, uint64_t>& counters) {
  std::map<std::string, double> gauges = sink.Gauges();
  const auto hits = counters.find("similarity.memo_hits");
  const auto misses = counters.find("similarity.memo_misses");
  if (hits != counters.end() && misses != counters.end() &&
      hits->second + misses->second > 0) {
    gauges["similarity.memo_hit_rate"] =
        static_cast<double>(hits->second) /
        static_cast<double>(hits->second + misses->second);
  }
  return gauges;
}

/// Prints `phase` annotated with its share of `parent_ms` (the enclosing
/// phase's wall time; top-level phases are shown against the sink's total).
void PrintPhase(std::FILE* out, const PhaseNode& phase, int depth,
                double parent_ms) {
  const double pct =
      parent_ms > 0.0 ? 100.0 * phase.wall_ms / parent_ms : 0.0;
  std::fprintf(out, "  %*s%-*s %10.2f ms %5.1f%%\n", 2 * depth, "",
               28 - 2 * depth, phase.name.c_str(), phase.wall_ms, pct);
  for (const PhaseNode& child : phase.children) {
    PrintPhase(out, child, depth + 1, phase.wall_ms);
  }
}

void WriteHistogram(JsonWriter* json, const HistogramSnapshot& hist) {
  json->BeginObject();
  json->Key("count");
  json->Int(hist.count);
  json->Key("sum");
  json->Int(hist.sum);
  json->Key("min");
  json->Int(hist.min);
  json->Key("max");
  json->Int(hist.max);
  json->Key("p50");
  json->Int(hist.Percentile(0.50));
  json->Key("p90");
  json->Int(hist.Percentile(0.90));
  json->Key("p99");
  json->Int(hist.Percentile(0.99));
  json->Key("buckets");
  json->BeginArray();
  for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
    if (hist.buckets[b] == 0) continue;
    json->BeginObject();
    json->Key("lo");
    json->Int(ObsHistogramBucketLo(b));
    json->Key("hi");
    json->Int(ObsHistogramBucketHi(b));
    json->Key("count");
    json->Int(hist.buckets[b]);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

std::string RunReportJson(
    const ObsSink& sink, const std::string& command, size_t threads,
    const std::map<std::string, std::string>& annotations) {
  const std::map<std::string, uint64_t> counters = sink.CounterTotals();
  JsonWriter json;
  json.BeginObject();
  json.Key("lamo_report_version");
  json.Int(2);
  json.Key("command");
  json.String(command);
  json.Key("threads");
  json.Int(threads);
  json.Key("wall_ms");
  json.Double(sink.ElapsedMs());

  json.Key("annotations");
  json.BeginObject();
  for (const auto& [key, value] : annotations) {
    json.Key(key);
    json.String(value);
  }
  json.EndObject();

  json.Key("phases");
  json.BeginArray();
  for (const PhaseNode& phase : sink.Phases()) WritePhase(&json, phase);
  json.EndArray();

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : counters) {
    json.Key(name);
    json.Int(value);
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : DerivedGauges(sink, counters)) {
    json.Key(name);
    json.Double(value);
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const HistogramSnapshot& hist : sink.Histograms()) {
    json.Key(hist.name);
    WriteHistogram(&json, hist);
  }
  json.EndObject();

  json.Key("workers");
  json.BeginArray();
  for (const WorkerCounters& worker : sink.PerThreadCounters()) {
    json.BeginObject();
    json.Key("name");
    json.String(worker.thread_name);
    json.Key("tasks");
    const auto tasks = worker.counters.find(kChunksCounter);
    json.Int(tasks == worker.counters.end() ? 0 : tasks->second);
    json.Key("counters");
    json.BeginObject();
    for (const auto& [name, value] : worker.counters) {
      if (value == 0) continue;  // per-worker detail: nonzero cells only
      json.Key(name);
      json.Int(value);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.str();
}

Status WriteRunReport(
    const ObsSink& sink, const std::string& command, size_t threads,
    const std::string& path,
    const std::map<std::string, std::string>& annotations) {
  // Atomic replace: report consumers (lamo_report_check, dashboards) must
  // never observe a torn document.
  const std::string document =
      RunReportJson(sink, command, threads, annotations) + "\n";
  return WriteFileAtomic(path, document);
}

void PrintRunSummary(const ObsSink& sink, const std::string& command,
                     size_t threads, std::FILE* out) {
  const std::map<std::string, uint64_t> counters = sink.CounterTotals();
  std::fprintf(out, "== lamo %s run stats ==\n", command.c_str());
  std::fprintf(out, "wall time %.2f ms, %zu threads\n", sink.ElapsedMs(),
               threads);
  const std::vector<PhaseNode> phases = sink.Phases();
  if (!phases.empty()) {
    std::fprintf(out, "phases (%% of parent wall time):\n");
    for (const PhaseNode& phase : phases) {
      PrintPhase(out, phase, 0, sink.ElapsedMs());
    }
  }
  std::fprintf(out, "counters (nonzero):\n");
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    std::fprintf(out, "  %-28s %12" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : DerivedGauges(sink, counters)) {
    std::fprintf(out, "  %-28s %12.4f\n", name.c_str(), value);
  }
  bool histogram_header = false;
  for (const HistogramSnapshot& hist : sink.Histograms()) {
    if (hist.count == 0) continue;
    if (!histogram_header) {
      std::fprintf(out, "latency histograms (us):\n");
      std::fprintf(out, "  %-28s %10s %10s %10s %10s\n", "", "count", "p50",
                   "p90", "p99");
      histogram_header = true;
    }
    std::fprintf(out,
                 "  %-28s %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                 " %10" PRIu64 "\n",
                 hist.name.c_str(), hist.count, hist.Percentile(0.50),
                 hist.Percentile(0.90), hist.Percentile(0.99));
  }
  std::fprintf(out, "workers:\n");
  for (const WorkerCounters& worker : sink.PerThreadCounters()) {
    const auto tasks = worker.counters.find(kChunksCounter);
    std::fprintf(out, "  %-28s %12" PRIu64 " tasks\n",
                 worker.thread_name.c_str(),
                 tasks == worker.counters.end() ? 0 : tasks->second);
  }
}

}  // namespace lamo
