#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace lamo {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

void AddWindowedGaugeSample(PromFamily* family, const std::string& base,
                            const std::string& window, double value) {
  family->samples.push_back(base + "{window=\"" + window + "\"} " +
                            FormatDouble(value));
}

void AppendHistogramFamily(std::vector<PromFamily>* out,
                           const std::string& base,
                           const HistogramSnapshot& h) {
  PromFamily family{base, "histogram", {}};
  uint64_t cum = 0;
  for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    cum += h.buckets[b];
    // The last bucket's upper bound is UINT64_MAX; it is covered by +Inf.
    if (b + 1 < kObsHistogramBuckets) {
      family.samples.push_back(base + "_bucket{le=\"" +
                               std::to_string(ObsHistogramBucketHi(b)) +
                               "\"} " + std::to_string(cum));
    }
  }
  family.samples.push_back(base + "_bucket{le=\"+Inf\"} " +
                           std::to_string(h.count));
  family.samples.push_back(base + "_sum " + std::to_string(h.sum));
  family.samples.push_back(base + "_count " + std::to_string(h.count));
  out->push_back(std::move(family));
}

}  // namespace

std::string PromMetricName(const std::string& obs_name) {
  std::string out = "lamo_";
  for (char c : obs_name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

std::vector<PromFamily> CollectPromFamilies(const ObsSink* sink,
                                            MetricWindows* windows,
                                            uint64_t now_ms, double uptime_s,
                                            double start_time_s) {
  std::vector<PromFamily> out;
  out.push_back({"lamo_uptime_seconds",
                 "gauge",
                 {"lamo_uptime_seconds " + FormatDouble(uptime_s)}});
  out.push_back({"lamo_start_time_seconds",
                 "gauge",
                 {"lamo_start_time_seconds " + FormatDouble(start_time_s)}});
  if (sink == nullptr) return out;

  const std::map<std::string, uint64_t> counters = sink->CounterTotals();
  const std::vector<HistogramSnapshot> histograms = sink->Histograms();
  MetricWindows::Delta d10, d60;
  bool have10 = false;
  bool have60 = false;
  if (windows != nullptr) {
    windows->Update(now_ms, counters, histograms);
    have10 = windows->WindowDelta(10'000, &d10);
    have60 = windows->WindowDelta(60'000, &d60);
  }

  for (const auto& [name, value] : sink->Gauges()) {
    const std::string metric = PromMetricName(name);
    out.push_back({metric, "gauge", {metric + " " + FormatDouble(value)}});
  }

  for (const auto& [name, total] : counters) {
    if (total == 0) continue;  // the registry spans the whole binary
    const std::string base = PromMetricName(name);
    out.push_back({base + "_total",
                   "counter",
                   {base + "_total " + std::to_string(total)}});
    PromFamily rates{base + "_per_sec", "gauge", {}};
    if (uptime_s > 0.0) {
      AddWindowedGaugeSample(&rates, rates.name, "lifetime",
                             static_cast<double>(total) / uptime_s);
    }
    if (have10 && d10.span_s > 0.0) {
      AddWindowedGaugeSample(
          &rates, rates.name, "10s",
          static_cast<double>(d10.counters[name]) / d10.span_s);
    }
    if (have60 && d60.span_s > 0.0) {
      AddWindowedGaugeSample(
          &rates, rates.name, "60s",
          static_cast<double>(d60.counters[name]) / d60.span_s);
    }
    if (!rates.samples.empty()) out.push_back(std::move(rates));
  }

  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (h.count == 0) continue;
    const std::string base = PromMetricName(h.name);
    AppendHistogramFamily(&out, base, h);
    static const std::pair<const char*, double> kQuantiles[] = {
        {"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
    for (const auto& [suffix, q] : kQuantiles) {
      PromFamily pct{base + suffix, "gauge", {}};
      AddWindowedGaugeSample(&pct, pct.name, "lifetime",
                             static_cast<double>(h.Percentile(q)));
      if (have10 && i < d10.histograms.size() && d10.histograms[i].count > 0) {
        AddWindowedGaugeSample(
            &pct, pct.name, "10s",
            static_cast<double>(d10.histograms[i].Percentile(q)));
      }
      if (have60 && i < d60.histograms.size() && d60.histograms[i].count > 0) {
        AddWindowedGaugeSample(
            &pct, pct.name, "60s",
            static_cast<double>(d60.histograms[i].Percentile(q)));
      }
      out.push_back(std::move(pct));
    }
  }
  return out;
}

std::vector<std::string> RenderPromLines(
    const std::vector<PromFamily>& families) {
  std::vector<std::string> lines;
  for (const PromFamily& f : families) {
    if (f.samples.empty()) continue;
    lines.push_back("# TYPE " + f.name + " " + f.type);
    for (const std::string& s : f.samples) lines.push_back(s);
  }
  return lines;
}

bool ParsePromFamilies(const std::string& text,
                       std::vector<PromFamily>* families, std::string* error) {
  families->clear();
  auto fail = [error](size_t line_no, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space == std::string::npos) {
          return fail(line_no, "malformed TYPE line");
        }
        PromFamily family;
        family.name = rest.substr(0, space);
        family.type = rest.substr(space + 1);
        if (!ValidMetricName(family.name)) {
          return fail(line_no, "invalid metric name '" + family.name + "'");
        }
        if (family.type != "counter" && family.type != "gauge" &&
            family.type != "histogram") {
          return fail(line_no, "unknown metric type '" + family.type + "'");
        }
        families->push_back(std::move(family));
      }
      continue;  // # HELP and other comments
    }
    if (families->empty()) {
      return fail(line_no, "sample before any # TYPE header");
    }
    PromFamily& family = families->back();
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      return fail(line_no, "sample line has no value");
    }
    const std::string name = line.substr(0, name_end);
    if (!ValidMetricName(name)) {
      return fail(line_no, "invalid sample name '" + name + "'");
    }
    bool belongs = name == family.name;
    if (!belongs && family.type == "histogram") {
      belongs = name == family.name + "_bucket" ||
                name == family.name + "_sum" || name == family.name + "_count";
    }
    if (!belongs) {
      return fail(line_no,
                  "sample '" + name + "' outside family '" + family.name + "'");
    }
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        return fail(line_no, "unterminated label set");
      }
      value_start = close + 1;
    }
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    if (value_start >= line.size()) {
      return fail(line_no, "sample line has no value");
    }
    const std::string value = line.substr(value_start);
    char* parse_end = nullptr;
    const double v = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0' || !std::isfinite(v)) {
      return fail(line_no, "non-numeric sample value '" + value + "'");
    }
    family.samples.push_back(line);
  }
  return true;
}

std::string InjectPromLabels(const std::string& sample,
                             const std::string& labels) {
  if (labels.empty()) return sample;
  const size_t space = sample.find(' ');
  const size_t brace = sample.find('{');
  if (brace != std::string::npos &&
      (space == std::string::npos || brace < space)) {
    return sample.substr(0, brace + 1) + labels + "," +
           sample.substr(brace + 1);
  }
  if (space == std::string::npos) return sample;  // malformed; leave as-is
  return sample.substr(0, space) + "{" + labels + "}" + sample.substr(space);
}

void MergePromFamilies(std::vector<PromFamily>* into,
                       const std::vector<PromFamily>& from,
                       const std::string& labels) {
  for (const PromFamily& f : from) {
    PromFamily* target = nullptr;
    for (PromFamily& existing : *into) {
      if (existing.name == f.name) {
        target = &existing;
        break;
      }
    }
    if (target == nullptr) {
      into->push_back({f.name, f.type, {}});
      target = &into->back();
    }
    for (const std::string& s : f.samples) {
      target->samples.push_back(InjectPromLabels(s, labels));
    }
  }
}

}  // namespace lamo
