#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Registry of counter names; lives behind a function-local static so
/// namespace-scope ObsCounterId initializers in other translation units are
/// safe during static initialization.
struct CounterRegistry {
  std::mutex mu;
  std::vector<std::string> names;  // guarded by mu
};

CounterRegistry& Registry() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

/// Separate registry for histogram names (ids are a distinct dense space).
CounterRegistry& HistogramRegistry() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

size_t RegisterName(CounterRegistry& registry, const std::string& name,
                    size_t cap, const char* kind) {
  std::lock_guard<std::mutex> lock(registry.mu);
  for (size_t id = 0; id < registry.names.size(); ++id) {
    if (registry.names[id] == name) return id;
  }
  LAMO_CHECK_LT(registry.names.size(), cap)
      << "too many observability " << kind << "; raise the cap";
  registry.names.push_back(name);
  return registry.names.size() - 1;
}

std::atomic<ObsSink*> g_sink{nullptr};
std::atomic<uint64_t> g_epoch_source{0};
std::atomic<uint8_t> g_active_mask{0};

/// Per-thread cache of the block belonging to the installed sink. The epoch
/// check invalidates the cached pointer whenever the sink changes, so a
/// stale pointer from a destroyed sink is never dereferenced.
struct TlsCache {
  uint64_t epoch = 0;
  ObsSink::CounterBlock* block = nullptr;
};
thread_local TlsCache tls_cache;
thread_local std::string* tls_thread_name = nullptr;

}  // namespace

size_t ObsCounterId(const std::string& name) {
  return RegisterName(Registry(), name, kMaxObsCounters, "counters");
}

std::vector<std::string> ObsCounterNames() {
  CounterRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.names;
}

size_t ObsHistogramId(const std::string& name) {
  return RegisterName(HistogramRegistry(), name, kMaxObsHistograms,
                      "histograms");
}

std::vector<std::string> ObsHistogramNames() {
  CounterRegistry& registry = HistogramRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.names;
}

ObsSink* GetObsSink() { return g_sink.load(std::memory_order_acquire); }

void SetObsSink(ObsSink* sink) {
  g_sink.store(sink, std::memory_order_release);
  internal::SetObsActiveBit(kObsSinkBit, sink != nullptr);
}

uint8_t ObsActiveMask() {
  return g_active_mask.load(std::memory_order_relaxed);
}

namespace internal {
std::string CurrentThreadName() {
  return tls_thread_name != nullptr && !tls_thread_name->empty()
             ? *tls_thread_name
             : "main";
}

void SetObsActiveBit(uint8_t bit, bool on) {
  if (on) {
    g_active_mask.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_active_mask.fetch_and(static_cast<uint8_t>(~bit),
                            std::memory_order_relaxed);
  }
}
}  // namespace internal

bool ObsEnabled() {
  return g_sink.load(std::memory_order_relaxed) != nullptr;
}

void ObsAdd(size_t counter_id, uint64_t delta) {
  ObsSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  TlsCache& cache = tls_cache;
  if (cache.block == nullptr || cache.epoch != sink->epoch()) {
    cache.block = sink->BlockForCurrentThread();
    cache.epoch = sink->epoch();
  }
  cache.block->cells[counter_id].fetch_add(delta, std::memory_order_relaxed);
}

size_t ObsHistogramBucket(uint64_t value) {
  const size_t width = static_cast<size_t>(std::bit_width(value));
  return std::min(width, kObsHistogramBuckets - 1);
}

uint64_t ObsHistogramBucketLo(size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t ObsHistogramBucketHi(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kObsHistogramBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

void ObsObserve(size_t histogram_id, uint64_t value) {
  ObsSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  TlsCache& cache = tls_cache;
  if (cache.block == nullptr || cache.epoch != sink->epoch()) {
    cache.block = sink->BlockForCurrentThread();
    cache.epoch = sink->epoch();
  }
  ObsSink::HistogramCells& cells = cache.block->histograms[histogram_id];
  cells.buckets[ObsHistogramBucket(value)].fetch_add(
      1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
  // The owning thread is the only writer, so plain compare-then-store min/
  // max updates cannot lose; atomics make the snapshot reads race-free.
  if (value < cells.min.load(std::memory_order_relaxed)) {
    cells.min.store(value, std::memory_order_relaxed);
  }
  if (value > cells.max.load(std::memory_order_relaxed)) {
    cells.max.store(value, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped_q * count)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return std::min(max, std::max(min, ObsHistogramBucketHi(b)));
    }
  }
  return max;
}

HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b) {
  HistogramSnapshot merged;
  merged.name = a.name.empty() ? b.name : a.name;
  merged.count = a.count + b.count;
  merged.sum = a.sum + b.sum;
  if (a.count == 0) {
    merged.min = b.min;
    merged.max = b.max;
  } else if (b.count == 0) {
    merged.min = a.min;
    merged.max = a.max;
  } else {
    merged.min = std::min(a.min, b.min);
    merged.max = std::max(a.max, b.max);
  }
  for (size_t i = 0; i < kObsHistogramBuckets; ++i) {
    merged.buckets[i] = a.buckets[i] + b.buckets[i];
  }
  return merged;
}

void ObsSetThreadName(const std::string& name) {
  // Never freed on purpose: thread_local destructor order versus pool
  // teardown is not worth reasoning about for one small string per thread.
  // Each string is parked in a process-lifetime registry so it stays
  // reachable after its thread exits (keeps LeakSanitizer quiet when a
  // short-lived ThreadPool — e.g. one per server run — is torn down).
  if (tls_thread_name == nullptr) {
    tls_thread_name = new std::string();
    static std::mutex* mu = new std::mutex();
    static std::vector<std::string*>* parked = new std::vector<std::string*>();
    const std::lock_guard<std::mutex> lock(*mu);
    parked->push_back(tls_thread_name);
  }
  *tls_thread_name = name;
  // A block created before the rename keeps working; relabel it.
  ObsSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr && tls_cache.block != nullptr &&
      tls_cache.epoch == sink->epoch()) {
    tls_cache.block->thread_name = name;
  }
}

ObsSink::ObsSink()
    : epoch_(g_epoch_source.fetch_add(1) + 1), start_(Clock::now()) {}

ObsSink::~ObsSink() {
  // Auto-uninstall so stale global pointers cannot outlive the sink.
  ObsSink* expected = this;
  if (g_sink.compare_exchange_strong(expected, nullptr)) {
    internal::SetObsActiveBit(kObsSinkBit, false);
  }
}

ObsSink::CounterBlock* ObsSink::BlockForCurrentThread() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.push_back(std::make_unique<CounterBlock>());
  blocks_.back()->thread_name =
      tls_thread_name != nullptr && !tls_thread_name->empty()
          ? *tls_thread_name
          : "main";
  return blocks_.back().get();
}

void ObsSink::BeginPhase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseNode>* container =
      phase_stack_.empty() ? &root_phases_ : &phase_stack_.back()->children;
  container->push_back(PhaseNode{name, 0.0, {}});
  phase_stack_.push_back(&container->back());
  phase_starts_.push_back(Clock::now());
}

void ObsSink::EndPhase() {
  std::lock_guard<std::mutex> lock(mu_);
  LAMO_CHECK(!phase_stack_.empty()) << "EndPhase without matching BeginPhase";
  phase_stack_.back()->wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() -
                                                phase_starts_.back())
          .count();
  phase_stack_.pop_back();
  phase_starts_.pop_back();
}

void ObsSink::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

std::map<std::string, uint64_t> ObsSink::CounterTotals() const {
  const std::vector<std::string> names = ObsCounterNames();
  std::map<std::string, uint64_t> totals;
  for (const std::string& name : names) totals[name] = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& block : blocks_) {
    for (size_t id = 0; id < names.size(); ++id) {
      totals[names[id]] += block->cells[id].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::vector<WorkerCounters> ObsSink::PerThreadCounters() const {
  const std::vector<std::string> names = ObsCounterNames();
  std::vector<WorkerCounters> result;
  std::lock_guard<std::mutex> lock(mu_);
  result.reserve(blocks_.size());
  for (const auto& block : blocks_) {
    WorkerCounters wc;
    wc.thread_name = block->thread_name;
    for (size_t id = 0; id < names.size(); ++id) {
      wc.counters[names[id]] =
          block->cells[id].load(std::memory_order_relaxed);
    }
    result.push_back(std::move(wc));
  }
  return result;
}

std::map<std::string, double> ObsSink::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::vector<HistogramSnapshot> ObsSink::Histograms() const {
  const std::vector<std::string> names = ObsHistogramNames();
  std::vector<HistogramSnapshot> result(names.size());
  for (size_t id = 0; id < names.size(); ++id) result[id].name = names[id];
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& block : blocks_) {
    for (size_t id = 0; id < names.size(); ++id) {
      const HistogramCells& cells = block->histograms[id];
      HistogramSnapshot part;
      part.name = names[id];
      for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
        part.buckets[b] = cells.buckets[b].load(std::memory_order_relaxed);
        part.count += part.buckets[b];
      }
      if (part.count == 0) continue;
      part.sum = cells.sum.load(std::memory_order_relaxed);
      part.min = cells.min.load(std::memory_order_relaxed);
      part.max = cells.max.load(std::memory_order_relaxed);
      result[id] = MergeHistograms(result[id], part);
    }
  }
  return result;
}

std::vector<PhaseNode> ObsSink::Phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseNode> phases = root_phases_;
  // Open phases have wall_ms 0 in the copy; patch in elapsed-so-far times by
  // walking the open chain (the stack holds pointers into the originals, so
  // the copy is patched positionally: each open phase is the last child at
  // its depth).
  const Clock::time_point now = Clock::now();
  std::vector<PhaseNode>* level = &phases;
  for (size_t depth = 0; depth < phase_stack_.size(); ++depth) {
    if (level->empty()) break;
    PhaseNode& open = level->back();
    open.wall_ms = std::chrono::duration<double, std::milli>(
                       now - phase_starts_[depth])
                       .count();
    level = &open.children;
  }
  return phases;
}

double ObsSink::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

ScopedTimer::ScopedTimer(const std::string& name) : sink_(GetObsSink()) {
  if (sink_ != nullptr) sink_->BeginPhase(name);
  if (TraceEnabled()) {
    // Orchestration-level only, so the by-name registry lookup is fine here.
    span_id_ = ObsSpanId(name);
    span_start_ = std::chrono::steady_clock::now();
    span_active_ = true;
  }
}

ScopedTimer::~ScopedTimer() {
  if (span_active_) {
    TraceRecordSpan(span_id_, span_start_, std::chrono::steady_clock::now());
  }
  if (sink_ != nullptr) sink_->EndPhase();
}

}  // namespace lamo
