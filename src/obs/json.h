#ifndef LAMO_OBS_JSON_H_
#define LAMO_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lamo {

/// Minimal JSON emitter used by the run-report writer. Tracks nesting and
/// commas so call sites read like the document; strings are escaped per RFC
/// 8259. Numbers are emitted either as integers or as shortest-round-trip
/// doubles via %.17g trimmed to %.6g when exact (reports are for humans and
/// dashboards, not bit-archival).
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next object member.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Int(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  void Separate();

  std::string out_;
  // One entry per open container: true once a first element was written.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Escapes `s` as the contents of a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

/// A parsed JSON document node. Object members preserve file order; lookup
/// is linear (report documents are small).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                               // arrays
  std::vector<std::pair<std::string, JsonValue>> members;     // objects

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` into `*value`. On failure returns false and, when `error`
/// is non-null, stores a message with the failing byte offset. Supports the
/// full JSON value grammar (objects, arrays, strings with escapes, numbers,
/// true/false/null); \uXXXX escapes are decoded to UTF-8.
bool ParseJson(const std::string& text, JsonValue* value, std::string* error);

}  // namespace lamo

#endif  // LAMO_OBS_JSON_H_
