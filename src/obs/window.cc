#include "obs/window.h"

#include <algorithm>
#include <utility>

namespace lamo {

MetricWindows::MetricWindows(uint64_t slot_ms, size_t capacity)
    : slot_ms_(slot_ms == 0 ? 1 : slot_ms),
      capacity_(capacity == 0 ? 1 : capacity) {}

void MetricWindows::Update(uint64_t now_ms,
                           std::map<std::string, uint64_t> counters,
                           std::vector<HistogramSnapshot> histograms) {
  // Archive the PREVIOUS latest before overwriting it, so back-to-back
  // scrapes still leave one slot strictly older than the newest snapshot
  // (otherwise two quick scrapes could never produce a nonzero span).
  if (have_latest_ &&
      (slots_.empty() || latest_.t_ms >= slots_.back().t_ms + slot_ms_)) {
    slots_.push_back(latest_);
    while (slots_.size() > capacity_) slots_.pop_front();
  }
  latest_.t_ms = now_ms;
  latest_.counters = std::move(counters);
  latest_.histograms = std::move(histograms);
  have_latest_ = true;
  if (slots_.empty()) {
    slots_.push_back(latest_);
  }
}

HistogramSnapshot DiffHistograms(const HistogramSnapshot& to,
                                 const HistogramSnapshot& from) {
  HistogramSnapshot d;
  d.name = to.name;
  for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
    const uint64_t hi = to.buckets[b];
    const uint64_t lo = from.buckets[b];
    d.buckets[b] = hi > lo ? hi - lo : 0;
    d.count += d.buckets[b];
  }
  d.sum = to.sum > from.sum ? to.sum - from.sum : 0;
  if (d.count > 0) {
    // min/max are not delta-able; fall back to the bounds of the occupied
    // buckets so Percentile stays clamped to a sound range.
    for (size_t b = 0; b < kObsHistogramBuckets; ++b) {
      if (d.buckets[b] > 0) {
        d.min = ObsHistogramBucketLo(b);
        break;
      }
    }
    for (size_t b = kObsHistogramBuckets; b-- > 0;) {
      if (d.buckets[b] > 0) {
        d.max = ObsHistogramBucketHi(b);
        break;
      }
    }
  }
  return d;
}

bool MetricWindows::WindowDelta(uint64_t window_ms, Delta* out) const {
  if (!have_latest_) return false;
  // The newest archived slot that is at least `window_ms` older than the
  // latest snapshot; when the ring is too young, the oldest slot (a shorter,
  // best-effort window). Slots with the same timestamp as the latest snapshot
  // cannot anchor a window.
  const Slot* base = nullptr;
  for (const Slot& s : slots_) {
    if (s.t_ms >= latest_.t_ms) break;
    if (base == nullptr || latest_.t_ms - s.t_ms >= window_ms) base = &s;
    if (latest_.t_ms - s.t_ms < window_ms) break;
  }
  if (base == nullptr) return false;
  out->span_s = static_cast<double>(latest_.t_ms - base->t_ms) / 1000.0;
  out->counters.clear();
  for (const auto& [name, total] : latest_.counters) {
    const auto it = base->counters.find(name);
    const uint64_t before = it == base->counters.end() ? 0 : it->second;
    out->counters[name] = total > before ? total - before : 0;
  }
  out->histograms.clear();
  out->histograms.reserve(latest_.histograms.size());
  for (size_t i = 0; i < latest_.histograms.size(); ++i) {
    if (i < base->histograms.size()) {
      out->histograms.push_back(
          DiffHistograms(latest_.histograms[i], base->histograms[i]));
    } else {
      out->histograms.push_back(latest_.histograms[i]);
    }
  }
  return true;
}

}  // namespace lamo
