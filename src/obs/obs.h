#ifndef LAMO_OBS_OBS_H_
#define LAMO_OBS_OBS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lamo {

/// ---- Observability layer -------------------------------------------------
///
/// A lightweight metrics/tracing facility for the pipeline:
///
///   * named counters, incremented lock-free from any thread (each thread
///     owns a private cell block; blocks are merged at snapshot time);
///   * gauges (named doubles, set rarely, e.g. derived rates);
///   * hierarchical phase timers (`ScopedTimer`) over the monotonic clock;
///   * a serializable run report (see run_report.h) that the CLI writes via
///     `--report <path>` and summarizes on stderr via `--stats`.
///
/// The whole layer is *disabled by default*: no sink is installed, and every
/// instrumentation call degrades to one relaxed atomic load plus a branch.
/// Instrumented hot paths therefore cost nothing measurable when nobody is
/// observing. The CLI (or a test) enables collection by installing an
/// `ObsSink` with `SetObsSink`.
///
/// Counter naming convention (enforced by review, documented in DESIGN.md
/// §6): `<component>.<metric>` in lower snake case, cumulative totals, with
/// `_us` / `_ms` suffixes for duration sums, e.g. `esu.subgraphs`,
/// `similarity.memo_hits`, `pool.queue_wait_us`.

/// Hard cap on distinct counters; registration past the cap is a fatal
/// error. A fixed capacity keeps per-thread cell blocks allocation-stable so
/// snapshots never race block growth.
constexpr size_t kMaxObsCounters = 128;

/// Hard cap on distinct histograms (same rationale as kMaxObsCounters).
constexpr size_t kMaxObsHistograms = 32;

/// Buckets per histogram. Bucket 0 holds the value 0; bucket i >= 1 holds
/// values in [2^(i-1), 2^i - 1] (log2 buckets); the last bucket absorbs the
/// open tail. 64 buckets cover the full uint64_t range.
constexpr size_t kObsHistogramBuckets = 64;

/// Bits of ObsActiveMask(): which observability consumers are installed.
constexpr uint8_t kObsSinkBit = 1;   ///< an ObsSink (counters/histograms)
constexpr uint8_t kObsTraceBit = 2;  ///< a TraceCollector (obs/trace.h)

/// Bitmask of installed consumers. One relaxed atomic load — instrumentation
/// sites that feed both a histogram and a trace span branch on this once, so
/// the fully-disabled path stays a single load.
uint8_t ObsActiveMask();

/// Registers `name` (idempotent) and returns its dense id. Typically called
/// once per instrumentation site via a namespace-scope `const size_t`
/// initializer, so ids are resolved before any hot loop runs. Thread-safe.
size_t ObsCounterId(const std::string& name);

/// All names registered so far, indexed by counter id.
std::vector<std::string> ObsCounterNames();

class ObsSink;

/// The installed sink, or nullptr when observability is disabled.
ObsSink* GetObsSink();

/// Installs `sink` process-wide (nullptr disables collection). The caller
/// keeps ownership and must keep the sink alive until after uninstalling it;
/// no instrumented code may be running concurrently with the switch.
void SetObsSink(ObsSink* sink);

/// True iff a sink is installed. One relaxed atomic load.
bool ObsEnabled();

/// Adds `delta` to the counter. A no-op (load + branch) when disabled.
void ObsAdd(size_t counter_id, uint64_t delta);

/// ObsAdd(counter_id, 1).
inline void ObsIncrement(size_t counter_id) { ObsAdd(counter_id, 1); }

/// Registers histogram `name` (idempotent) and returns its dense id. Same
/// contract as ObsCounterId: call once at namespace scope per site.
size_t ObsHistogramId(const std::string& name);

/// All histogram names registered so far, indexed by histogram id.
std::vector<std::string> ObsHistogramNames();

/// Records one observation into the histogram (typically a per-item latency
/// in microseconds). Lock-free: bumps the calling thread's private bucket
/// cells. A no-op (load + branch) when disabled.
void ObsObserve(size_t histogram_id, uint64_t value);

/// The log2 bucket index for `value`: 0 for 0, otherwise bit_width(value)
/// clamped to the last bucket.
size_t ObsHistogramBucket(uint64_t value);

/// Inclusive value bounds of `bucket` (see kObsHistogramBuckets).
uint64_t ObsHistogramBucketLo(size_t bucket);
uint64_t ObsHistogramBucketHi(size_t bucket);

/// Merged view of one histogram across all threads.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;  ///< == sum over buckets
  uint64_t sum = 0;    ///< sum of observed values
  uint64_t min = 0;    ///< smallest observation (0 when count == 0)
  uint64_t max = 0;    ///< largest observation (0 when count == 0)
  std::array<uint64_t, kObsHistogramBuckets> buckets{};

  /// Estimated value at quantile `q` in [0, 1]: the upper bound of the
  /// bucket containing the rank-q observation, clamped to [min, max] so the
  /// estimate never leaves the observed range. Monotone in q. 0 when empty.
  uint64_t Percentile(double q) const;
};

/// Elementwise merge (bucket sums, min of mins, max of maxes). Associative
/// and commutative, so per-thread blocks may be folded in any order.
HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b);

/// Labels the calling thread in per-worker breakdowns ("worker0", ...).
/// Threads that never call this are reported as "main".
void ObsSetThreadName(const std::string& name);

/// One timed phase of a run. Phases nest: `children` are the phases begun
/// while this one was open.
struct PhaseNode {
  std::string name;
  double wall_ms = 0.0;
  std::vector<PhaseNode> children;
};

/// Counter values of one thread, keyed by counter name.
struct WorkerCounters {
  std::string thread_name;
  std::map<std::string, uint64_t> counters;
};

/// Collects one run's metrics: per-thread counter blocks, gauges, and the
/// phase tree. Construct, install with SetObsSink, run the pipeline, then
/// snapshot (run_report.h turns snapshots into JSON). The destructor
/// uninstalls the sink if it is still the installed one.
///
/// Thread-safety: counters may be bumped from any thread (lock-free);
/// Begin/EndPhase and SetGauge take a mutex and are intended for
/// orchestration-level code, not per-item hot loops. Snapshots are safe once
/// the parallel regions that touched the sink have completed (the runtime's
/// region join is the synchronization point).
class ObsSink {
 public:
  ObsSink();
  ~ObsSink();

  ObsSink(const ObsSink&) = delete;
  ObsSink& operator=(const ObsSink&) = delete;

  /// Opens a phase nested under the currently open one (top-level if none).
  void BeginPhase(const std::string& name);

  /// Closes the innermost open phase, recording its wall time.
  void EndPhase();

  /// Sets gauge `name` to `value` (overwrites).
  void SetGauge(const std::string& name, double value);

  /// Merged counter totals over all threads. Every registered counter
  /// appears, zero-valued ones included, so report schemas are stable.
  std::map<std::string, uint64_t> CounterTotals() const;

  /// Per-thread counter breakdown, in thread-registration order (the main
  /// thread first in practice). Only counters registered at snapshot time
  /// appear; zero cells are included.
  std::vector<WorkerCounters> PerThreadCounters() const;

  /// Gauge snapshot.
  std::map<std::string, double> Gauges() const;

  /// Merged histograms over all threads, indexed by histogram id. Every
  /// registered histogram appears, empty ones included, so report schemas
  /// are stable.
  std::vector<HistogramSnapshot> Histograms() const;

  /// Completed top-level phases (with nested children), in begin order.
  /// Phases still open are reported with their elapsed-so-far wall time.
  std::vector<PhaseNode> Phases() const;

  /// Wall time since this sink was constructed, in milliseconds.
  double ElapsedMs() const;

  /// ---- internal plumbing (used by ObsAdd) --------------------------------

  /// One histogram's per-thread cells. min starts at UINT64_MAX so the
  /// owner-thread compare-and-store works without a sentinel branch; a block
  /// whose bucket sum is zero contributes nothing at merge time.
  struct HistogramCells {
    std::array<std::atomic<uint64_t>, kObsHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  /// One thread's private counter + histogram cells. Cells are atomics only
  /// so that cross-thread snapshot reads are race-free; the owning thread is
  /// the only writer, so the relaxed fetch_adds never contend.
  struct CounterBlock {
    std::string thread_name;
    std::array<std::atomic<uint64_t>, kMaxObsCounters> cells{};
    std::array<HistogramCells, kMaxObsHistograms> histograms{};
  };

  /// The calling thread's block, created and registered on first use.
  CounterBlock* BlockForCurrentThread();

  /// Process-unique id of this sink; lets threads detect a sink swap and
  /// drop cached block pointers from a previous sink.
  uint64_t epoch() const { return epoch_; }

 private:
  using Clock = std::chrono::steady_clock;

  const uint64_t epoch_;
  const Clock::time_point start_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<CounterBlock>> blocks_;  // guarded by mu_
  std::map<std::string, double> gauges_;              // guarded by mu_
  std::vector<PhaseNode> root_phases_;                // guarded by mu_
  std::vector<PhaseNode*> phase_stack_;               // guarded by mu_
  std::vector<Clock::time_point> phase_starts_;       // guarded by mu_
};

/// RAII phase timer: opens a phase on the installed sink at construction and
/// closes it at destruction; when a trace collector is installed (obs/trace.h)
/// it also emits the phase as a trace span. Free (one mask load) when nothing
/// is installed. Intended for orchestration scopes (a pipeline stage), not
/// for per-item loops — it takes the sink's mutex.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ObsSink* sink_;
  size_t span_id_ = 0;
  bool span_active_ = false;
  std::chrono::steady_clock::time_point span_start_;
};

namespace internal {
/// Sets/clears one bit of ObsActiveMask(). Called by SetObsSink and
/// SetTraceCollector only; never from instrumented code.
void SetObsActiveBit(uint8_t bit, bool on);

/// The calling thread's ObsSetThreadName label ("main" when unset). Used by
/// the trace collector when registering a thread's ring.
std::string CurrentThreadName();
}  // namespace internal

}  // namespace lamo

#endif  // LAMO_OBS_OBS_H_
