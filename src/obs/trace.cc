#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "obs/json.h"
#include "util/atomic_io.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Registry of span names (separate dense id space from counters).
struct SpanRegistry {
  std::mutex mu;
  std::vector<std::string> names;  // guarded by mu
};

SpanRegistry& Registry() {
  static SpanRegistry* registry = new SpanRegistry();
  return *registry;
}

std::atomic<TraceCollector*> g_collector{nullptr};
std::atomic<uint64_t> g_epoch_source{0};

/// Events lost to ring overflow, also reported in run reports (schema v2
/// requires this counter so dashboards can tell a complete trace from a
/// truncated one).
const size_t kObsTraceDropped = ObsCounterId("trace.dropped");

/// Per-thread cache of the ring belonging to the installed collector; the
/// epoch check invalidates it on a collector swap (same scheme as the
/// counter-block cache in obs.cc).
struct TlsRingCache {
  uint64_t epoch = 0;
  TraceCollector::Ring* ring = nullptr;
};
thread_local TlsRingCache tls_ring;

}  // namespace

size_t ObsSpanId(const std::string& name) {
  SpanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (size_t id = 0; id < registry.names.size(); ++id) {
    if (registry.names[id] == name) return id;
  }
  LAMO_CHECK_LT(registry.names.size(), kMaxObsSpans)
      << "too many trace span names; raise kMaxObsSpans";
  registry.names.push_back(name);
  return registry.names.size() - 1;
}

std::vector<std::string> ObsSpanNames() {
  SpanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.names;
}

TraceCollector* GetTraceCollector() {
  return g_collector.load(std::memory_order_acquire);
}

void SetTraceCollector(TraceCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
  internal::SetObsActiveBit(kObsTraceBit, collector != nullptr);
}

bool TraceEnabled() {
  return g_collector.load(std::memory_order_relaxed) != nullptr;
}

void TraceRecordSpan(size_t span_id,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     uint64_t arg0, uint64_t arg1, size_t num_args) {
  TraceCollector* collector = g_collector.load(std::memory_order_acquire);
  if (collector == nullptr) return;
  const uint64_t start_us = collector->MicrosSinceStart(start);
  const uint64_t end_us = collector->MicrosSinceStart(end);
  collector->Record(span_id, start_us,
                    end_us >= start_us ? end_us - start_us : 0, arg0, arg1,
                    num_args);
}

TraceCollector::TraceCollector(size_t events_per_thread)
    : epoch_(g_epoch_source.fetch_add(1) + 1),
      start_(std::chrono::steady_clock::now()),
      events_per_thread_(events_per_thread == 0 ? 1 : events_per_thread) {}

TraceCollector::~TraceCollector() {
  TraceCollector* expected = this;
  if (g_collector.compare_exchange_strong(expected, nullptr)) {
    internal::SetObsActiveBit(kObsTraceBit, false);
  }
}

TraceCollector::Ring* TraceCollector::RingForCurrentThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<uint32_t>(rings_.size());
  ring->thread_name = internal::CurrentThreadName();
  ring->slots.resize(events_per_thread_);
  rings_.push_back(std::move(ring));
  return rings_.back().get();
}

void TraceCollector::Record(size_t span_id, uint64_t start_us,
                            uint64_t dur_us, uint64_t arg0, uint64_t arg1,
                            size_t num_args) {
  TlsRingCache& cache = tls_ring;
  if (cache.ring == nullptr || cache.epoch != epoch_) {
    cache.ring = RingForCurrentThread();
    cache.epoch = epoch_;
  }
  Ring& ring = *cache.ring;
  const size_t capacity = ring.slots.size();
  if (ring.next >= capacity) ObsAdd(kObsTraceDropped, 1);
  TraceEvent& slot = ring.slots[ring.next % capacity];
  slot.span_id = static_cast<uint32_t>(span_id);
  slot.num_args = static_cast<uint8_t>(num_args);
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  slot.args[0] = arg0;
  slot.args[1] = arg1;
  ++ring.next;
}

uint64_t TraceCollector::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    if (ring->next > ring->slots.size()) {
      dropped += ring->next - ring->slots.size();
    }
  }
  return dropped;
}

uint64_t TraceCollector::RecordedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t recorded = 0;
  for (const auto& ring : rings_) recorded += ring->next;
  return recorded;
}

uint64_t TraceCollector::NowMicros() const {
  return MicrosSinceStart(std::chrono::steady_clock::now());
}

uint64_t TraceCollector::MicrosSinceStart(
    std::chrono::steady_clock::time_point t) const {
  if (t <= start_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - start_)
          .count());
}

std::string TraceCollector::ToJson() const {
  const std::vector<std::string> names = ObsSpanNames();
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("recorded");
  json.Int(RecordedEvents());
  json.Key("dropped");
  json.Int(DroppedEvents());
  json.EndObject();
  json.Key("traceEvents");
  json.BeginArray();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    // Chrome/Perfetto thread metadata: names the tid lane in the UI.
    json.BeginObject();
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(ring->tid);
    json.Key("name");
    json.String("thread_name");
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    json.String(ring->thread_name);
    json.EndObject();
    json.EndObject();

    const size_t capacity = ring->slots.size();
    const uint64_t first =
        ring->next > capacity ? ring->next - capacity : 0;
    for (uint64_t i = first; i < ring->next; ++i) {
      const TraceEvent& event = ring->slots[i % capacity];
      json.BeginObject();
      json.Key("ph");
      json.String("X");
      json.Key("pid");
      json.Int(1);
      json.Key("tid");
      json.Int(ring->tid);
      json.Key("name");
      json.String(event.span_id < names.size() ? names[event.span_id]
                                               : "span?");
      json.Key("ts");
      json.Int(event.start_us);
      json.Key("dur");
      json.Int(event.dur_us);
      if (event.num_args > 0) {
        json.Key("args");
        json.BeginObject();
        json.Key("a0");
        json.Int(event.args[0]);
        if (event.num_args > 1) {
          json.Key("a1");
          json.Int(event.args[1]);
        }
        json.EndObject();
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status TraceCollector::WriteFile(const std::string& path) const {
  return WriteFileAtomic(path, ToJson() + "\n");
}

}  // namespace lamo
