#ifndef LAMO_OBS_RUN_REPORT_H_
#define LAMO_OBS_RUN_REPORT_H_

#include <cstdio>
#include <map>
#include <string>

#include "obs/obs.h"
#include "util/status.h"

namespace lamo {

/// Serializes one run's metrics as a JSON document (schema documented in
/// docs/FORMATS.md, "Run report"):
///
///   {
///     "lamo_report_version": 2,
///     "command": "mine",
///     "threads": 4,                  // resolved worker count
///     "wall_ms": 152.7,             // sink lifetime
///     "annotations": {"predictor": "gds", ...},   // command metadata
///     "phases":   [{"name": ..., "wall_ms": ..., "children": [...]}],
///     "counters": {"esu.subgraphs": 123456, ...},   // merged totals
///     "gauges":   {"similarity.memo_hit_rate": 0.97, ...},
///     "histograms": {"esu.chunk_us": {"count": ..., "sum": ..., "min": ...,
///                    "max": ..., "p50": ..., "p90": ..., "p99": ...,
///                    "buckets": [{"lo": ..., "hi": ..., "count": ...}]}},
///     "workers":  [{"name": "main", "tasks": 37, "counters": {...}}, ...]
///   }
///
/// Every registered counter appears in "counters" and every registered
/// histogram in "histograms" (zeros/empties included) so the key set is
/// stable across workloads. "tasks" is the worker's `parallel.chunks`
/// value — the number of loop chunks it executed.
/// `similarity.memo_hit_rate` is derived from the memo counters when they
/// are nonzero. Histogram "buckets" lists the nonzero log2 buckets with
/// inclusive [lo, hi] value bounds; counts sum to "count" and percentiles
/// lie within [min, max] (invariants enforced by tools/lamo_report_check).
/// "annotations" carries string facts about the run the counters cannot
/// express — e.g. which predictor backend `lamo predict` ran (required by
/// lamo_report_check for predict reports); always present, possibly empty.
std::string RunReportJson(
    const ObsSink& sink, const std::string& command, size_t threads,
    const std::map<std::string, std::string>& annotations = {});

/// Writes RunReportJson to `path` (trailing newline added).
Status WriteRunReport(
    const ObsSink& sink, const std::string& command, size_t threads,
    const std::string& path,
    const std::map<std::string, std::string>& annotations = {});

/// Prints a human-oriented summary (phases, nonzero counters, per-worker
/// task counts) to `out`; the CLI sends this to stderr under `--stats`.
void PrintRunSummary(const ObsSink& sink, const std::string& command,
                     size_t threads, std::FILE* out);

}  // namespace lamo

#endif  // LAMO_OBS_RUN_REPORT_H_
