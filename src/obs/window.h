#ifndef LAMO_OBS_WINDOW_H_
#define LAMO_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace lamo {

/// ---- Rolling-window metric aggregates ------------------------------------
///
/// Turns the cumulative counters and log2 histograms of an ObsSink into
/// sliding-window rates and percentiles (10s / 60s / lifetime) without adding
/// any cost to the instrumentation hot path. The design is scrape-driven:
/// nothing ticks in the background and no per-observation work happens —
/// `Update` is called only when somebody scrapes (a METRICS request), takes a
/// full registry snapshot, and archives it into a small ring of timestamped
/// slots. A window aggregate is then the difference between the newest
/// snapshot and the newest archived slot at least `window_ms` old. When
/// nothing is scraping, instrumented code still pays exactly the usual single
/// relaxed atomic load (see obs.h).
///
/// Log2 bucket counts, counts and sums are all cumulative, so snapshot
/// differences are themselves valid histograms and the existing
/// HistogramSnapshot::Percentile applies unchanged. min/max are NOT
/// delta-able; window snapshots instead clamp percentiles to the bounds of
/// the occupied buckets of the delta, which is the best information the ring
/// retains.
///
/// All entry points take an explicit `now_ms` (milliseconds on any monotonic
/// scale chosen by the caller), which makes window-boundary behavior exactly
/// reproducible under a fake clock in tests.
///
/// Thread-safety: none. Callers (SnapshotService / RouterService) serialize
/// scrapes with their own mutex.
class MetricWindows {
 public:
  /// `slot_ms` is the archival granularity: consecutive Updates closer
  /// together than this collapse into one slot, bounding ring growth under
  /// aggressive scraping. `capacity` slots are retained, so the longest
  /// answerable window is about slot_ms * capacity. The defaults (5s x 16)
  /// comfortably cover the 60s window.
  explicit MetricWindows(uint64_t slot_ms = 5000, size_t capacity = 16);

  /// Archives a snapshot taken at `now_ms`. Call with the sink's merged
  /// CounterTotals() / Histograms() at scrape time, before querying deltas.
  void Update(uint64_t now_ms, std::map<std::string, uint64_t> counters,
              std::vector<HistogramSnapshot> histograms);

  /// The difference between the latest Update and the ring slot that best
  /// covers a `window_ms` lookback.
  struct Delta {
    double span_s = 0.0;  ///< actual time covered (may be < window_ms early on)
    std::map<std::string, uint64_t> counters;   ///< counter increments
    std::vector<HistogramSnapshot> histograms;  ///< histogram increments
  };

  /// Computes the window ending at the latest Update. Returns false when the
  /// ring has no slot strictly older than the latest Update (first scrape),
  /// in which case no rates can be derived yet.
  bool WindowDelta(uint64_t window_ms, Delta* out) const;

  /// Number of archived slots (test hook for rotation behavior).
  size_t slots() const { return slots_.size(); }

  /// Timestamp of the latest Update (0 before the first).
  uint64_t latest_ms() const { return latest_.t_ms; }

 private:
  struct Slot {
    uint64_t t_ms = 0;
    std::map<std::string, uint64_t> counters;
    std::vector<HistogramSnapshot> histograms;
  };

  const uint64_t slot_ms_;
  const size_t capacity_;
  bool have_latest_ = false;
  Slot latest_;              // most recent Update, always current
  std::deque<Slot> slots_;   // archived snapshots, oldest first
};

/// The elementwise difference `to - from` of two cumulative histogram
/// snapshots (`to` must be a later snapshot of the same histogram, so every
/// bucket of `to` >= the matching bucket of `from`; differences saturate at
/// zero defensively). min/max of the result are the bounds of its occupied
/// buckets. Exposed for the window property tests.
HistogramSnapshot DiffHistograms(const HistogramSnapshot& to,
                                 const HistogramSnapshot& from);

}  // namespace lamo

#endif  // LAMO_OBS_WINDOW_H_
