#include "util/fault.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <mutex>

namespace lamo {
namespace {

std::mutex g_mu;

std::vector<std::string>& Registry() {
  static std::vector<std::string>* names = new std::vector<std::string>();
  return *names;
}

/// The armed spec (guarded by g_mu); g_armed is the relaxed fast-path gate.
struct ArmedFault {
  std::string point;
  uint64_t nth = 0;  // 1-based hit that triggers
  FaultAction action = FaultAction::kCrash;
  uint64_t hits = 0;
};
ArmedFault* g_fault = nullptr;  // guarded by g_mu
std::atomic<bool> g_armed{false};
std::once_flag g_env_once;

/// Parses "<point>:<n>[:<action>]"; returns nullptr on malformed input
/// (reported on stderr — a misarmed fault test must not silently pass).
ArmedFault* ParseSpec(const std::string& spec) {
  const size_t first = spec.find(':');
  if (first == std::string::npos || first == 0) {
    std::fprintf(stderr, "lamo: ignoring malformed LAMO_FAULT \"%s\" "
                 "(want <point>:<n>[:<action>])\n", spec.c_str());
    return nullptr;
  }
  const size_t second = spec.find(':', first + 1);
  const std::string count = spec.substr(
      first + 1, second == std::string::npos ? std::string::npos
                                             : second - first - 1);
  char* end = nullptr;
  const unsigned long long nth = std::strtoull(count.c_str(), &end, 10);
  if (count.empty() || end == nullptr || *end != '\0' || nth == 0) {
    std::fprintf(stderr, "lamo: ignoring LAMO_FAULT \"%s\": hit count must "
                 "be a positive integer\n", spec.c_str());
    return nullptr;
  }
  FaultAction action = FaultAction::kCrash;
  if (second != std::string::npos) {
    const std::string name = spec.substr(second + 1);
    if (name == "crash") {
      action = FaultAction::kCrash;
    } else if (name == "short_write") {
      action = FaultAction::kShortWrite;
    } else if (name == "eintr") {
      action = FaultAction::kEintr;
    } else if (name == "error") {
      action = FaultAction::kError;
    } else {
      std::fprintf(stderr, "lamo: ignoring LAMO_FAULT \"%s\": unknown action "
                   "\"%s\"\n", spec.c_str(), name.c_str());
      return nullptr;
    }
  }
  ArmedFault* fault = new ArmedFault();
  fault->point = spec.substr(0, first);
  fault->nth = nth;
  fault->action = action;
  return fault;
}

void Arm(const char* spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  delete g_fault;
  g_fault = nullptr;
  if (spec != nullptr && spec[0] != '\0') g_fault = ParseSpec(spec);
  g_armed.store(g_fault != nullptr, std::memory_order_release);
}

void ArmFromEnvOnce() {
  std::call_once(g_env_once, [] { Arm(std::getenv("LAMO_FAULT")); });
}

}  // namespace

size_t FaultPointId(const std::string& name) {
  ArmFromEnvOnce();
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string>& names = Registry();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.push_back(name);
  return names.size() - 1;
}

std::vector<std::string> FaultPointNames() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> names = Registry();
  std::sort(names.begin(), names.end());
  return names;
}

FaultAction FaultHit(size_t point_id) {
  if (!g_armed.load(std::memory_order_relaxed)) return FaultAction::kNone;
  FaultAction action = FaultAction::kNone;
  std::string point;
  uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_fault == nullptr) return FaultAction::kNone;
    const std::vector<std::string>& names = Registry();
    if (point_id >= names.size() || names[point_id] != g_fault->point) {
      return FaultAction::kNone;
    }
    if (++g_fault->hits != g_fault->nth) return FaultAction::kNone;
    action = g_fault->action;
    point = g_fault->point;
    hit = g_fault->hits;
  }
  if (action == FaultAction::kCrash) {
    // Simulated hard crash: bypass atexit, stream flushing and destructors
    // so nothing downstream of this point gets a chance to tidy up.
    std::fprintf(stderr,
                 "lamo: injected crash at fault point %s (hit %llu)\n",
                 point.c_str(), static_cast<unsigned long long>(hit));
    _exit(kFaultExitCode);
  }
  std::fprintf(stderr, "lamo: injected fault at point %s (hit %llu)\n",
               point.c_str(), static_cast<unsigned long long>(hit));
  return action;
}

void FaultArmForTest(const char* spec) {
  ArmFromEnvOnce();  // keep the env parse from clobbering a test arm later
  Arm(spec);
}

}  // namespace lamo
