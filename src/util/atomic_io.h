#ifndef LAMO_UTIL_ATOMIC_IO_H_
#define LAMO_UTIL_ATOMIC_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace lamo {

/// Atomically replaces `path` with `bytes`: the data is written to
/// `path + ".tmp"`, fsynced, renamed over `path`, and the containing
/// directory is fsynced, so a crash at any instant leaves either the old
/// file (or nothing) or the complete new file — never a partial one. The
/// tmp name is deterministic, so a leftover tmp from a crashed writer is
/// simply overwritten (and cleared by the rename) on the next attempt.
///
/// Fault points (util/fault.h):
///   atomic.write       hit once per write(2) call; supports crash,
///                      short_write (this call transfers at most 1 byte),
///                      eintr (this call is retried) and error.
///   atomic.pre_rename  hit after the tmp file is durable, before the
///                      rename — a crash here must leave the target intact.
///
/// `fsync_out`, when non-null, is incremented by 1 per durable replace (the
/// file + directory syncs of one call count once), feeding the
/// checkpoint.writes == checkpoint.fsyncs report invariant.
Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       size_t* fsync_out = nullptr);

/// The deterministic tmp path WriteFileAtomic stages through (for tests and
/// leftover cleanup).
std::string AtomicTmpPath(const std::string& path);

}  // namespace lamo

#endif  // LAMO_UTIL_ATOMIC_IO_H_
