#ifndef LAMO_UTIL_TABLE_PRINTER_H_
#define LAMO_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace lamo {

/// Fixed-width ASCII table writer used by the table/figure-regeneration
/// harnesses in bench/ to print paper-style rows.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as comma-separated values; convenient for re-plotting figures.
class CsvWriter {
 public:
  /// Opens `path` for writing; check `ok()` before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// True if the file opened successfully.
  bool ok() const { return file_ != nullptr; }

  /// Writes one CSV row. Cells containing commas or quotes are quoted.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::FILE* file_;
};

}  // namespace lamo

#endif  // LAMO_UTIL_TABLE_PRINTER_H_
