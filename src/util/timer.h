#ifndef LAMO_UTIL_TIMER_H_
#define LAMO_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace lamo {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lamo

#endif  // LAMO_UTIL_TIMER_H_
