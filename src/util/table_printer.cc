#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace lamo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) std::fputc(',', file_);
    const std::string& cell = cells[i];
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      std::fputs(cell.c_str(), file_);
      continue;
    }
    std::fputc('"', file_);
    for (char ch : cell) {
      if (ch == '"') std::fputc('"', file_);
      std::fputc(ch, file_);
    }
    std::fputc('"', file_);
  }
  std::fputc('\n', file_);
}

}  // namespace lamo
