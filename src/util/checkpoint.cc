#include "util/checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_io.h"
#include "util/fault.h"

namespace lamo {
namespace {

/// Container layout (docs/FORMATS.md §Checkpoint):
///   magic "LAMOCKPT" (8) | version u32 | stage string | fingerprint u64 |
///   payload string | checksum u64 (FNV-1a over everything before it)
constexpr char kCkptMagic[8] = {'L', 'A', 'M', 'O', 'C', 'K', 'P', 'T'};
constexpr uint32_t kCkptVersion = 1;

const size_t kFpSave = FaultPointId("checkpoint.save");

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint at " + path);
    }
    return Status::IoError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read failed for " + path);
  return Status::OK();
}

}  // namespace

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU64(s.size());
  bytes_.append(s);
}

Status ByteReader::Take(size_t n, const char** out) {
  if (n > bytes_.size() - pos_) {
    return Status::Corruption("checkpoint payload truncated");
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::GetU8(uint8_t* v) {
  const char* p;
  LAMO_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  const char* p;
  LAMO_RETURN_IF_ERROR(Take(4, &p));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  const char* p;
  LAMO_RETURN_IF_ERROR(Take(8, &p));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::GetDouble(double* v) {
  uint64_t bits;
  LAMO_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status ByteReader::GetString(std::string* s) {
  uint64_t len;
  LAMO_RETURN_IF_ERROR(GetU64(&len));
  if (len > bytes_.size() - pos_) {
    return Status::Corruption("checkpoint string length out of range");
  }
  const char* p;
  LAMO_RETURN_IF_ERROR(Take(static_cast<size_t>(len), &p));
  s->assign(p, static_cast<size_t>(len));
  return Status::OK();
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string CheckpointPath(const std::string& dir, const std::string& stage) {
  return dir + "/" + stage + ".ckpt";
}

Status SaveCheckpoint(const std::string& dir, const std::string& stage,
                      uint64_t fingerprint, std::string_view payload,
                      size_t* fsync_out) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir failed for " + dir + ": " +
                           std::strerror(errno));
  }
  if (FaultHit(kFpSave) == FaultAction::kError) {
    return Status::IoError("injected checkpoint save error for " + stage);
  }
  ByteWriter w;
  w.PutBytes(std::string_view(kCkptMagic, sizeof(kCkptMagic)));
  w.PutU32(kCkptVersion);
  w.PutString(stage);
  w.PutU64(fingerprint);
  w.PutString(payload);
  w.PutU64(Fnv1a64(w.bytes()));
  return WriteFileAtomic(CheckpointPath(dir, stage), w.bytes(), fsync_out);
}

Status LoadCheckpoint(const std::string& dir, const std::string& stage,
                      uint64_t fingerprint, std::string* payload) {
  const std::string path = CheckpointPath(dir, stage);
  std::string bytes;
  LAMO_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  if (bytes.size() < sizeof(kCkptMagic) + 8 ||
      std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  const std::string_view body(bytes.data(), bytes.size() - 8);
  ByteReader tail(std::string_view(bytes.data() + body.size(), 8));
  uint64_t want_sum = 0;
  LAMO_RETURN_IF_ERROR(tail.GetU64(&want_sum));
  if (Fnv1a64(body) != want_sum) {
    return Status::Corruption("checkpoint checksum mismatch in " + path);
  }
  ByteReader r(body.substr(sizeof(kCkptMagic)));
  uint32_t version = 0;
  LAMO_RETURN_IF_ERROR(r.GetU32(&version));
  if (version != kCkptVersion) {
    return Status::Corruption("unsupported checkpoint version in " + path);
  }
  std::string got_stage;
  LAMO_RETURN_IF_ERROR(r.GetString(&got_stage));
  if (got_stage != stage) {
    return Status::Corruption("checkpoint stage mismatch in " + path +
                              " (got \"" + got_stage + "\")");
  }
  uint64_t got_fingerprint = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&got_fingerprint));
  if (got_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint fingerprint mismatch in " + path +
        " (config or input changed since the checkpoint was written)");
  }
  LAMO_RETURN_IF_ERROR(r.GetString(payload));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in checkpoint " + path);
  }
  return Status::OK();
}

}  // namespace lamo
