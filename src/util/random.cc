#include "util/random.h"

#include <cmath>

namespace lamo {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

uint64_t Rng::PowerLaw(double alpha, uint64_t cap) {
  assert(alpha > 1.0);
  assert(cap >= 1);
  // Inverse-transform of a continuous Pareto truncated to [1, cap+1).
  const double u = NextDouble();
  const double one_minus = 1.0 - alpha;
  const double hi = std::pow(static_cast<double>(cap + 1), one_minus);
  const double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus);
  uint64_t value = static_cast<uint64_t>(x);
  if (value < 1) value = 1;
  if (value > cap) value = cap;
  return value;
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  double draw = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  if (draw < 0.0) draw = 0.0;
  return static_cast<uint64_t>(draw);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(Uniform(j + 1));
    bool seen = false;
    for (size_t chosen : result) {
      if (chosen == t) {
        seen = true;
        break;
      }
    }
    result.push_back(seen ? j : t);
  }
  return result;
}

Rng Rng::Fork() { return Rng(Next64()); }

Rng Rng::Stream(uint64_t seed, uint64_t stream) {
  // Hash seed and stream through independent SplitMix64 chains so that
  // neighboring streams of one seed and equal streams of neighboring seeds
  // are both decorrelated.
  uint64_t seed_state = seed;
  uint64_t stream_state = stream + 0x632BE59BD9B4E019ULL;
  return Rng(SplitMix64(seed_state) ^ SplitMix64(stream_state));
}

}  // namespace lamo
