#ifndef LAMO_UTIL_FAULT_H_
#define LAMO_UTIL_FAULT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lamo {

/// ---- Deterministic fault injection ----------------------------------------
///
/// Named fault points compiled into the binary let tests prove — rather than
/// assert — that the checkpoint/resume and atomic-write machinery survives
/// crashes, short writes and interrupted syscalls. A fault point is a named
/// call site (`FaultHit`) that is one relaxed atomic load when no fault is
/// armed, so the instrumentation is compiled in unconditionally.
///
/// Arming happens through the environment:
///
///   LAMO_FAULT="<point>:<n>[:<action>]"
///
/// triggers `<action>` at exactly the n-th hit (1-based) of `<point>` in this
/// process. Actions:
///
///   crash        (default) print a diagnostic and _exit(kFaultExitCode)
///                immediately — no atexit handlers, no stream flushes, no
///                destructors; a deterministic stand-in for SIGKILL.
///   short_write  the current atomic write transfers at most one byte
///                (the write loop must recover). Only meaningful at
///                `atomic.write`; other sites ignore it.
///   eintr        the current write call fails once with EINTR semantics
///                (the write loop must retry). Only meaningful at
///                `atomic.write`.
///   error        the fault point reports an injected IoError to its caller
///                (exercises the Status propagation path).
///
/// Fault-point naming convention: `<component>.<event>` in lower snake case,
/// e.g. `checkpoint.mine.chunk`, `atomic.pre_rename`. The registry of points
/// compiled into a binary is printed by `lamo fault-points`; the crash-matrix
/// test (tests/fault_resume_test.sh) iterates over exactly that list, so new
/// fault points fail the suite until the matrix covers them.

/// Exit code of an injected crash; distinct from every normal CLI exit so
/// tests can assert the crash came from the armed fault point.
inline constexpr int kFaultExitCode = 42;

/// What an armed fault point tells its caller to do. kCrash never reaches
/// the caller (FaultHit exits the process first).
enum class FaultAction : uint8_t {
  kNone = 0,
  kCrash,
  kShortWrite,
  kEintr,
  kError,
};

/// Registers `name` (idempotent) and returns its dense id. Call once per
/// site via a namespace-scope `const size_t` initializer, like ObsCounterId.
/// Thread-safe.
size_t FaultPointId(const std::string& name);

/// Names of all fault points registered so far, sorted.
std::vector<std::string> FaultPointNames();

/// Records one hit of the point. Returns kNone unless LAMO_FAULT armed this
/// point and this is exactly its n-th hit; a `crash` action _exits the
/// process right here. One relaxed atomic load when nothing is armed.
FaultAction FaultHit(size_t point_id);

/// Re-parses the fault spec (nullptr or "" disarms) and resets hit counts.
/// Tests use this instead of setenv so one process can exercise several
/// specs; production code never calls it.
void FaultArmForTest(const char* spec);

}  // namespace lamo

#endif  // LAMO_UTIL_FAULT_H_
