#ifndef LAMO_UTIL_STRING_UTIL_H_
#define LAMO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lamo {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a non-negative integer; returns false on any non-digit content.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double; returns false on malformed content.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace lamo

#endif  // LAMO_UTIL_STRING_UTIL_H_
