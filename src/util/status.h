#ifndef LAMO_UTIL_STATUS_H_
#define LAMO_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lamo {

/// Error categories used across the library. Mirrors the usual
/// database-systems convention (RocksDB/Arrow style) of returning a
/// lightweight status object instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a human-readable name for a status code ("Ok", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable result-of-operation descriptor. `Status::OK()` carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  /// Factories for each error category.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status category.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error wrapper, in the spirit of absl::StatusOr. Access to
/// `value()` on an error result aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from an error status. Must not be OK (an OK status
  /// with no value is meaningless).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Implicit conversion from a value; yields an OK result.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lamo

/// Propagates a non-OK status from an expression to the caller.
#define LAMO_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::lamo::Status _lamo_status = (expr);       \
    if (!_lamo_status.ok()) return _lamo_status; \
  } while (0)

/// Evaluates `rexpr` (a StatusOr), propagating errors, else binds `lhs`.
#define LAMO_ASSIGN_OR_RETURN(lhs, rexpr)             \
  LAMO_ASSIGN_OR_RETURN_IMPL_(                        \
      LAMO_STATUS_CONCAT_(_lamo_statusor, __LINE__), lhs, rexpr)

#define LAMO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LAMO_STATUS_CONCAT_(a, b) LAMO_STATUS_CONCAT_IMPL_(a, b)
#define LAMO_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // LAMO_UTIL_STATUS_H_
