#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace lamo {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace lamo
