#ifndef LAMO_UTIL_RANDOM_H_
#define LAMO_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace lamo {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library takes one of these
/// explicitly so that all experiments are reproducible from a single seed.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Creates a generator from a 64-bit seed. Two generators built from the
  /// same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Geometric-ish power-law-tailed integer in [1, cap] with exponent alpha
  /// (> 1), via inverse transform sampling of a discrete Pareto.
  uint64_t PowerLaw(double alpha, uint64_t cap);

  /// Poisson variate with the given mean (Knuth for small, normal approx for
  /// large means).
  uint64_t Poisson(double mean);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element uniformly. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm); the result
  /// order is unspecified but deterministic for a given state.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each
  /// subcomponent its own stream without correlated draws.
  Rng Fork();

  /// Builds the generator for substream `stream` of `seed`. Unlike Fork(),
  /// the result depends only on (seed, stream) — not on how many draws any
  /// other substream makes — so parallel tasks (e.g. the randomized networks
  /// of a uniqueness ensemble) can each own a stream and produce the same
  /// values whether they run serially or concurrently, in any order.
  static Rng Stream(uint64_t seed, uint64_t stream);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace lamo

#endif  // LAMO_UTIL_RANDOM_H_
