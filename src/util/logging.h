#ifndef LAMO_UTIL_LOGGING_H_
#define LAMO_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lamo {

/// Log severities, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lamo

#define LAMO_LOG(level)                                             \
  ::lamo::internal_logging::LogMessage(::lamo::LogLevel::k##level, \
                                       __FILE__, __LINE__)

/// Always-on invariant check (kept in release builds); logs and aborts on
/// violation. Use for conditions whose failure means internal corruption.
#define LAMO_CHECK(condition)                                        \
  if (!(condition))                                                  \
  ::lamo::internal_logging::FatalLogMessage(__FILE__, __LINE__,      \
                                            #condition)

#define LAMO_CHECK_EQ(a, b) LAMO_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define LAMO_CHECK_NE(a, b) LAMO_CHECK((a) != (b))
#define LAMO_CHECK_LT(a, b) LAMO_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define LAMO_CHECK_LE(a, b) LAMO_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define LAMO_CHECK_GT(a, b) LAMO_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define LAMO_CHECK_GE(a, b) LAMO_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // LAMO_UTIL_LOGGING_H_
