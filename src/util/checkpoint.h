#ifndef LAMO_UTIL_CHECKPOINT_H_
#define LAMO_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lamo {

/// ---- Crash-safe stage checkpoints -----------------------------------------
///
/// A checkpoint is one file per pipeline stage, `<dir>/<stage>.ckpt`, holding
/// an opaque stage payload inside a versioned, checksummed container (layout
/// in docs/FORMATS.md §Checkpoint). Files are replaced via WriteFileAtomic,
/// so a crash mid-save leaves the previous complete checkpoint (or none) —
/// never a torn one. On resume, any load failure (missing file, bad magic,
/// bad checksum, mismatched fingerprint) is reported as a Status and the
/// stage restarts cleanly from the beginning; a stale or corrupt checkpoint
/// can cost recomputation but never correctness.

/// How a stage checkpoints, plumbed from the `--checkpoint`,
/// `--checkpoint-every` and `--resume` CLI flags.
struct CheckpointOptions {
  /// Directory for checkpoint files; empty disables checkpointing.
  std::string dir;
  /// Save after every N units of work (chunks / replicates / motifs).
  size_t every = 1;
  /// Attempt to load an existing checkpoint before starting.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

/// Bounds-checked little-endian serializers for checkpoint payloads.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  // u64 length + raw bytes
  void PutBytes(std::string_view s) { bytes_.append(s); }

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit over `bytes`, seeded by `seed` (chain calls to hash several
/// fields). Used for both checkpoint checksums and config fingerprints.
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull);

/// Atomically writes `<dir>/<stage>.ckpt` (creating `dir` if needed).
/// `fingerprint` identifies the config + input the payload belongs to;
/// LoadCheckpoint rejects a mismatch so a resumed run can't silently mix
/// state across configurations. `fsync_out` as in WriteFileAtomic.
Status SaveCheckpoint(const std::string& dir, const std::string& stage,
                      uint64_t fingerprint, std::string_view payload,
                      size_t* fsync_out = nullptr);

/// Loads and verifies `<dir>/<stage>.ckpt` into `payload`. NotFound if the
/// file does not exist, Corruption for any structural or checksum failure,
/// FailedPrecondition if the fingerprint does not match.
Status LoadCheckpoint(const std::string& dir, const std::string& stage,
                      uint64_t fingerprint, std::string* payload);

/// The checkpoint file path for a stage (for tests and docs).
std::string CheckpointPath(const std::string& dir, const std::string& stage);

}  // namespace lamo

#endif  // LAMO_UTIL_CHECKPOINT_H_
