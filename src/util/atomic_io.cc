#include "util/atomic_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.h"

namespace lamo {
namespace {

const size_t kFpWrite = FaultPointId("atomic.write");
const size_t kFpPreRename = FaultPointId("atomic.pre_rename");

Status IoErrorFor(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

/// write(2) loop that survives short writes and EINTR — the two behaviors
/// the atomic.write fault point injects on demand.
Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t done = 0;
  while (done < bytes.size()) {
    size_t want = bytes.size() - done;
    switch (FaultHit(kFpWrite)) {
      case FaultAction::kShortWrite:
        want = 1;
        break;
      case FaultAction::kEintr:
        errno = EINTR;
        continue;
      case FaultAction::kError:
        return Status::IoError("injected write error for " + path);
      default:
        break;
    }
    const ssize_t n = write(fd, bytes.data() + done, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorFor("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoErrorFor("open dir", dir);
  const int rc = fsync(fd);
  close(fd);
  // Some filesystems refuse directory fsync; the rename is still ordered
  // after the file fsync, so treat EINVAL as best-effort success.
  if (rc != 0 && errno != EINVAL) return IoErrorFor("fsync dir", dir);
  return Status::OK();
}

}  // namespace

std::string AtomicTmpPath(const std::string& path) { return path + ".tmp"; }

Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       size_t* fsync_out) {
  const std::string tmp = AtomicTmpPath(path);
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoErrorFor("open", tmp);
  Status status = WriteAll(fd, bytes, tmp);
  if (status.ok() && fsync(fd) != 0) status = IoErrorFor("fsync", tmp);
  if (close(fd) != 0 && status.ok()) status = IoErrorFor("close", tmp);
  if (!status.ok()) {
    unlink(tmp.c_str());
    return status;
  }
  FaultHit(kFpPreRename);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status = IoErrorFor("rename", tmp);
    unlink(tmp.c_str());
    return rename_status;
  }
  LAMO_RETURN_IF_ERROR(FsyncDirOf(path));
  if (fsync_out != nullptr) ++*fsync_out;
  return Status::OK();
}

}  // namespace lamo
