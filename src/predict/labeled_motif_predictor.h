#ifndef LAMO_PREDICT_LABELED_MOTIF_PREDICTOR_H_
#define LAMO_PREDICT_LABELED_MOTIF_PREDICTOR_H_

#include <vector>

#include "core/labeled_motif.h"
#include "predict/predictor.h"

namespace lamo {

/// The paper's proposed method (Section 5): predict the functions of a
/// protein from the labeled network motifs it occurs in.
///
/// For protein p and labeled motif g with occurrence set D_g, let v be a
/// vertex of g at which p appears in some occurrence. The likelihood that p
/// has function x is
///
///   f_x(p) = (1/z) * sum over g in LG_p of delta_g(v, x) * LMS(g)   (Eq. 5)
///
/// where delta_g(v, x) is the frequency of function x among the proteins
/// that play vertex v across g's occurrences (p's own occurrences excluded —
/// leave-one-out), LMS is the labeled-motif strength of Eq. 4, and z
/// normalizes the scores into [0, 1].
///
/// Unlike the four baselines, this exploits *remote but topologically
/// similar* proteins: the proteins at p's vertex in other occurrences need
/// not be anywhere near p in the network.
class LabeledMotifPredictor : public FunctionPredictor {
 public:
  /// How delta_g(v, x) is computed.
  enum class DeltaMode {
    /// From the labeling scheme (default, the paper's Eq. 5 reading): v's
    /// functions x1..xk are its scheme labels generalized to the top
    /// categories; a label votes for every category above it. Labels too
    /// general to fall under any category vote for nothing, so vague
    /// schemes are self-muting.
    kSchemeLabels,
    /// From the conforming occurrences: count the categories of the
    /// proteins playing v (kept as an ablation of the dictionary idea).
    kOccurrenceProteins,
  };

  /// Builds the per-protein motif-vertex index. All references must outlive
  /// the predictor. Motifs must already carry their LMS strengths
  /// (ComputeMotifStrengths). `ontology` is the branch the schemes were
  /// labeled in (used to generalize scheme labels to categories).
  LabeledMotifPredictor(const PredictionContext& context,
                        const Ontology& ontology,
                        const std::vector<LabeledMotif>& motifs,
                        DeltaMode mode = DeltaMode::kSchemeLabels);

  std::string name() const override { return "LabeledMotif"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

  /// True iff p occurs in at least one labeled motif (the method has
  /// signal for p).
  bool Covers(ProteinId p) const override { return !index_[p].empty(); }

  /// Fraction of annotated proteins covered by at least one labeled motif.
  double CoverageOfAnnotated() const;

 private:
  struct Site {
    uint32_t motif = 0;   // index into motifs_
    uint32_t vertex = 0;  // motif vertex position at which p appears
  };

  const PredictionContext& context_;
  const Ontology& ontology_;
  const std::vector<LabeledMotif>& motifs_;
  DeltaMode mode_;
  std::vector<std::vector<Site>> index_;  // per protein, deduplicated sites
  std::vector<double> priors_;  // per category: tie-break for unvoted ones
};

}  // namespace lamo

#endif  // LAMO_PREDICT_LABELED_MOTIF_PREDICTOR_H_
