#include "predict/prodistin.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace lamo {
namespace {

// A node of the (unrooted, stored rooted at the last join) BIONJ tree.
struct TreeNode {
  int parent = -1;
  int left = -1;    // -1 for leaves
  int right = -1;
  int protein = -1;  // leaf payload
  size_t subtree_annotated = 0;
};

}  // namespace

struct ProdistinPredictor::Impl {
  std::vector<int> leaf_of_protein;  // -1 if protein not in the tree
  std::vector<TreeNode> nodes;
};

double ProdistinPredictor::CzekanowskiDice(const Graph& ppi, ProteinId a,
                                           ProteinId b) {
  // Interaction lists with the proteins themselves added (Brun et al.):
  // A = N(a) ∪ {a}, B = N(b) ∪ {b}.
  auto na = ppi.Neighbors(a);
  auto nb = ppi.Neighbors(b);
  auto in_b = [&](VertexId x) {
    return x == b || std::binary_search(nb.begin(), nb.end(), x);
  };
  const size_t size_a = na.size() + 1;  // no self-loops, so a is not in na
  const size_t size_b = nb.size() + 1;
  size_t inter = 0;
  for (VertexId x : na) {
    if (in_b(x)) ++inter;
  }
  if (in_b(a)) ++inter;  // a itself may appear in B
  const size_t uni = size_a + size_b - inter;
  const size_t sym_diff = uni - inter;
  return static_cast<double>(sym_diff) / static_cast<double>(uni + inter);
}

ProdistinPredictor::ProdistinPredictor(const PredictionContext& context,
                                       const ProdistinConfig& config)
    : context_(context), config_(config), impl_(new Impl) {
  const Graph& ppi = *context_.ppi;
  const size_t num_proteins = ppi.num_vertices();
  impl_->leaf_of_protein.assign(num_proteins, -1);

  // Select proteins for the tree: all with degree >= 1, highest degree
  // first, capped.
  std::vector<ProteinId> selected;
  for (ProteinId p = 0; p < num_proteins; ++p) {
    if (ppi.Degree(p) >= 1) selected.push_back(p);
  }
  if (config_.max_tree_proteins != 0 &&
      selected.size() > config_.max_tree_proteins) {
    std::stable_sort(selected.begin(), selected.end(),
                     [&](ProteinId a, ProteinId b) {
                       return ppi.Degree(a) > ppi.Degree(b);
                     });
    selected.resize(config_.max_tree_proteins);
    std::sort(selected.begin(), selected.end());
  }
  const size_t n = selected.size();
  if (n < 3) return;  // no meaningful tree; all predictions fall back

  // Distance and variance matrices (BIONJ tracks both).
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = CzekanowskiDice(ppi, selected[i], selected[j]);
    }
  }
  std::vector<std::vector<double>> v = d;

  // active[i] = node index in impl_->nodes for cluster i.
  std::vector<int> active(n);
  impl_->nodes.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    TreeNode leaf;
    leaf.protein = static_cast<int>(selected[i]);
    impl_->nodes.push_back(leaf);
    active[i] = static_cast<int>(i);
    impl_->leaf_of_protein[selected[i]] = static_cast<int>(i);
  }

  std::vector<size_t> alive(n);
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<double> row_sum(n, 0.0);

  while (alive.size() > 2) {
    const size_t m = alive.size();
    // Row sums over alive clusters.
    for (size_t ii = 0; ii < m; ++ii) {
      double sum = 0.0;
      for (size_t jj = 0; jj < m; ++jj) {
        if (ii != jj) sum += d[alive[ii]][alive[jj]];
      }
      row_sum[alive[ii]] = sum;
    }
    // Pick the pair minimizing the NJ criterion Q; Q-ties are broken toward
    // the smaller raw distance (otherwise a far pair can tie with a
    // coincident pair and chain distant clusters together).
    constexpr double kEps = 1e-12;
    double best_q = std::numeric_limits<double>::infinity();
    double best_d = std::numeric_limits<double>::infinity();
    size_t best_ii = 0, best_jj = 1;
    for (size_t ii = 0; ii < m; ++ii) {
      for (size_t jj = ii + 1; jj < m; ++jj) {
        const double dist = d[alive[ii]][alive[jj]];
        const double q = static_cast<double>(m - 2) * dist -
                         row_sum[alive[ii]] - row_sum[alive[jj]];
        if (q < best_q - kEps ||
            (q < best_q + kEps && dist < best_d - kEps)) {
          best_q = q;
          best_d = dist;
          best_ii = ii;
          best_jj = jj;
        }
      }
    }
    const size_t i = alive[best_ii];
    const size_t j = alive[best_jj];

    // BIONJ's variance-optimal mixing weight.
    double lambda = 0.5;
    if (v[i][j] > 1e-12 && m > 2) {
      double variance_drift = 0.0;
      for (size_t kk = 0; kk < m; ++kk) {
        const size_t k = alive[kk];
        if (k == i || k == j) continue;
        variance_drift += v[j][k] - v[i][k];
      }
      lambda = 0.5 + variance_drift /
                         (2.0 * static_cast<double>(m - 2) * v[i][j]);
      lambda = std::clamp(lambda, 0.0, 1.0);
    }

    // Branch length estimates (used only in the reduction formulas).
    const double bi =
        0.5 * d[i][j] +
        (m > 2 ? (row_sum[i] - row_sum[j]) / (2.0 * static_cast<double>(m - 2))
               : 0.0);
    const double bj = d[i][j] - bi;

    // Join i and j into a new node stored in slot i.
    TreeNode internal;
    internal.left = active[i];
    internal.right = active[j];
    const int internal_index = static_cast<int>(impl_->nodes.size());
    impl_->nodes.push_back(internal);
    impl_->nodes[active[i]].parent = internal_index;
    impl_->nodes[active[j]].parent = internal_index;
    active[i] = internal_index;

    for (size_t kk = 0; kk < m; ++kk) {
      const size_t k = alive[kk];
      if (k == i || k == j) continue;
      const double dist = lambda * (d[i][k] - bi) +
                          (1.0 - lambda) * (d[j][k] - bj);
      d[i][k] = d[k][i] = std::max(0.0, dist);
      const double var = lambda * v[i][k] + (1.0 - lambda) * v[j][k] -
                         lambda * (1.0 - lambda) * v[i][j];
      v[i][k] = v[k][i] = std::max(0.0, var);
    }
    alive.erase(alive.begin() + static_cast<long>(best_jj));
  }

  // Join the last two clusters under a root.
  if (alive.size() == 2) {
    TreeNode root;
    root.left = active[alive[0]];
    root.right = active[alive[1]];
    const int root_index = static_cast<int>(impl_->nodes.size());
    impl_->nodes.push_back(root);
    impl_->nodes[active[alive[0]]].parent = root_index;
    impl_->nodes[active[alive[1]]].parent = root_index;
  }

  // Count annotated proteins per subtree (children precede parents in the
  // construction order, so a forward pass accumulates correctly).
  for (TreeNode& node : impl_->nodes) {
    if (node.protein >= 0) {
      node.subtree_annotated =
          context_.IsAnnotated(static_cast<ProteinId>(node.protein)) ? 1 : 0;
    }
  }
  for (size_t idx = 0; idx < impl_->nodes.size(); ++idx) {
    const TreeNode& node = impl_->nodes[idx];
    if (node.left >= 0) {
      impl_->nodes[idx].subtree_annotated =
          impl_->nodes[node.left].subtree_annotated +
          impl_->nodes[node.right].subtree_annotated;
    }
  }
}

ProdistinPredictor::~ProdistinPredictor() = default;

std::vector<Prediction> ProdistinPredictor::Predict(ProteinId p) const {
  std::vector<Prediction> predictions;
  const int leaf =
      p < impl_->leaf_of_protein.size() ? impl_->leaf_of_protein[p] : -1;
  if (leaf < 0) {
    // Not in the tree: fall back to global priors.
    for (TermId c : context_.categories) {
      predictions.push_back({c, context_.CategoryPrior(c)});
    }
    SortPredictions(&predictions);
    return predictions;
  }

  // Walk up to the smallest clade with enough annotated proteins besides p.
  const size_t self_annotated = context_.IsAnnotated(p) ? 1 : 0;
  int clade = leaf;
  while (impl_->nodes[clade].parent >= 0 &&
         impl_->nodes[clade].subtree_annotated - self_annotated <
             config_.min_clade_annotated) {
    clade = impl_->nodes[clade].parent;
  }

  // Majority vote of the clade's annotated proteins, excluding p.
  std::vector<double> counts(context_.categories.size(), 0.0);
  std::vector<int> stack{clade};
  while (!stack.empty()) {
    const TreeNode& node = impl_->nodes[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (node.protein >= 0) {
      const ProteinId q = static_cast<ProteinId>(node.protein);
      if (q == p) continue;
      for (size_t i = 0; i < context_.categories.size(); ++i) {
        if (context_.HasCategory(q, context_.categories[i])) {
          counts[i] += 1.0;
        }
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  for (size_t i = 0; i < context_.categories.size(); ++i) {
    predictions.push_back({context_.categories[i], counts[i]});
  }
  SortPredictions(&predictions);
  return predictions;
}

}  // namespace lamo
