#ifndef LAMO_PREDICT_REGISTRY_H_
#define LAMO_PREDICT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/labeled_motif.h"
#include "ontology/ontology.h"
#include "predict/predictor.h"
#include "util/status.h"

namespace lamo {

/// Everything a backend factory may draw on. `context` is always required
/// and must outlive the predictor. The labeled-motif fields are required by
/// `lms`; the precomputed matrices are optional fast paths (populated from
/// a v3 snapshot) — when absent, `gds`/`role` recompute from context->ppi,
/// which is deterministic, so both paths yield byte-identical predictions.
struct PredictorInputs {
  const PredictionContext* context = nullptr;
  const Ontology* ontology = nullptr;                     // lms
  const std::vector<LabeledMotif>* motifs = nullptr;      // lms
  const std::vector<uint64_t>* gds_signatures = nullptr;  // n x kGdsOrbits
  const std::vector<double>* role_vectors = nullptr;      // n x role_dim
  size_t role_dim = 0;
};

/// Registered backend names in canonical order: {"lms", "gds", "role"}.
/// `lms` first — it is the paper's method and every default.
const std::vector<std::string>& RegisteredPredictorNames();

/// The names joined for usage text: "lms|gds|role". Generated from the
/// registry so CLI help cannot drift from the factories.
std::string PredictorNamesUsage();

/// True iff `name` is a registered backend name.
bool IsRegisteredPredictor(const std::string& name);

/// Constructs the backend registered under `name`. InvalidArgument for an
/// unknown name (listing the registered ones) or when `inputs` lacks a
/// field the backend requires.
StatusOr<std::unique_ptr<FunctionPredictor>> MakePredictor(
    const std::string& name, const PredictorInputs& inputs);

}  // namespace lamo

#endif  // LAMO_PREDICT_REGISTRY_H_
