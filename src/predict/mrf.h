#ifndef LAMO_PREDICT_MRF_H_
#define LAMO_PREDICT_MRF_H_

#include <vector>

#include "predict/predictor.h"

namespace lamo {

/// Parameters of the MRF fit and inference.
struct MrfConfig {
  /// Gradient-ascent iterations for the pseudo-likelihood parameter fit.
  size_t fit_iterations = 200;
  /// Learning rate of the fit.
  double learning_rate = 0.05;
  /// Mean-field (belief-propagation-style) sweeps over latent proteins.
  size_t mean_field_iterations = 20;
};

/// The Markov-Random-Field method of Deng et al.: for each function x, a
/// binary MRF over the PPI network whose conditional for protein p given its
/// neighbors is logistic in the number of neighbors with and without x,
///
///   P(x_p = 1 | rest) = sigmoid(alpha_x + beta_x * M1(p) + gamma_x * M0(p)),
///
/// with parameters fit by pseudo-likelihood on the annotated proteins and
/// posteriors of unannotated proteins estimated by damped mean-field
/// iteration (the deterministic analogue of the paper's belief-propagation/
/// Gibbs inference). Predict(p) reports the converged conditional of p with
/// its own label treated as unknown.
class MrfPredictor : public FunctionPredictor {
 public:
  /// Fits all per-category models eagerly; `context` must outlive the
  /// predictor.
  MrfPredictor(const PredictionContext& context, const MrfConfig& config = {});

  std::string name() const override { return "MRF"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

  /// Fitted (alpha, beta, gamma) for one category index (tests).
  struct Parameters {
    double alpha = 0.0;
    double beta = 0.0;
    double gamma = 0.0;
  };
  const Parameters& parameters(size_t category_index) const {
    return parameters_[category_index];
  }

 private:
  double Conditional(size_t category_index, ProteinId p,
                     const std::vector<double>& marginals) const;

  const PredictionContext& context_;
  MrfConfig config_;
  std::vector<Parameters> parameters_;           // per category
  std::vector<std::vector<double>> marginals_;   // per category, per protein
};

}  // namespace lamo

#endif  // LAMO_PREDICT_MRF_H_
