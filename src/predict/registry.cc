#include "predict/registry.h"

#include "predict/gds.h"
#include "predict/labeled_motif_predictor.h"
#include "predict/role_similarity.h"

namespace lamo {
namespace {

using Factory = StatusOr<std::unique_ptr<FunctionPredictor>> (*)(
    const PredictorInputs&);

StatusOr<std::unique_ptr<FunctionPredictor>> MakeLms(
    const PredictorInputs& inputs) {
  if (inputs.ontology == nullptr || inputs.motifs == nullptr) {
    return Status::InvalidArgument(
        "predictor 'lms' needs labeled motifs and their ontology");
  }
  return std::unique_ptr<FunctionPredictor>(new LabeledMotifPredictor(
      *inputs.context, *inputs.ontology, *inputs.motifs));
}

StatusOr<std::unique_ptr<FunctionPredictor>> MakeGds(
    const PredictorInputs& inputs) {
  const size_t n = inputs.context->ppi->num_vertices();
  if (inputs.gds_signatures != nullptr && !inputs.gds_signatures->empty()) {
    if (inputs.gds_signatures->size() != n * kGdsOrbits) {
      return Status::InvalidArgument(
          "precomputed GDS signature matrix has the wrong shape");
    }
    return std::unique_ptr<FunctionPredictor>(
        new GdsPredictor(*inputs.context, *inputs.gds_signatures));
  }
  return std::unique_ptr<FunctionPredictor>(new GdsPredictor(*inputs.context));
}

StatusOr<std::unique_ptr<FunctionPredictor>> MakeRole(
    const PredictorInputs& inputs) {
  const size_t n = inputs.context->ppi->num_vertices();
  if (inputs.role_vectors != nullptr && !inputs.role_vectors->empty()) {
    if (inputs.role_dim == 0 ||
        inputs.role_vectors->size() != n * inputs.role_dim) {
      return Status::InvalidArgument(
          "precomputed role vector matrix has the wrong shape");
    }
    return std::unique_ptr<FunctionPredictor>(new RolePredictor(
        *inputs.context, *inputs.role_vectors, inputs.role_dim));
  }
  return std::unique_ptr<FunctionPredictor>(new RolePredictor(*inputs.context));
}

struct Entry {
  const char* name;
  Factory factory;
};

/// Canonical order: the paper's method first, then the alternatives.
constexpr Entry kRegistry[] = {
    {"lms", MakeLms},
    {"gds", MakeGds},
    {"role", MakeRole},
};

}  // namespace

const std::vector<std::string>& RegisteredPredictorNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const Entry& entry : kRegistry) v->push_back(entry.name);
    return v;
  }();
  return *names;
}

std::string PredictorNamesUsage() {
  std::string usage;
  for (const std::string& name : RegisteredPredictorNames()) {
    if (!usage.empty()) usage += "|";
    usage += name;
  }
  return usage;
}

bool IsRegisteredPredictor(const std::string& name) {
  for (const Entry& entry : kRegistry) {
    if (name == entry.name) return true;
  }
  return false;
}

StatusOr<std::unique_ptr<FunctionPredictor>> MakePredictor(
    const std::string& name, const PredictorInputs& inputs) {
  if (inputs.context == nullptr || inputs.context->ppi == nullptr) {
    return Status::InvalidArgument("predictor factory needs a context");
  }
  for (const Entry& entry : kRegistry) {
    if (name == entry.name) return entry.factory(inputs);
  }
  return Status::InvalidArgument("unknown predictor '" + name +
                                 "' (registered: " + PredictorNamesUsage() +
                                 ")");
}

}  // namespace lamo
