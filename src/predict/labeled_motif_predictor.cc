#include "predict/labeled_motif_predictor.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// One vote = one motif site contributing its weighted delta to a protein's
/// category scores.
const size_t kObsVotes = ObsCounterId("predict.votes");
/// Per-protein scoring latency; span arg = protein id.
const size_t kHistScoreUs = ObsHistogramId("predict.score_us");
const size_t kSpanScore = ObsSpanId("predict.score");

}  // namespace

LabeledMotifPredictor::LabeledMotifPredictor(
    const PredictionContext& context, const Ontology& ontology,
    const std::vector<LabeledMotif>& motifs, DeltaMode mode)
    : context_(context), ontology_(ontology), motifs_(motifs), mode_(mode) {
  priors_.reserve(context_.categories.size());
  for (TermId c : context_.categories) {
    priors_.push_back(context_.CategoryPrior(c));
  }
  index_.resize(context_.ppi->num_vertices());
  for (uint32_t mi = 0; mi < motifs_.size(); ++mi) {
    const LabeledMotif& motif = motifs_[mi];
    for (const MotifOccurrence& occ : motif.occurrences) {
      for (uint32_t pos = 0; pos < occ.proteins.size(); ++pos) {
        const VertexId p = occ.proteins[pos];
        auto& sites = index_[p];
        const Site site{mi, pos};
        const bool seen =
            std::any_of(sites.begin(), sites.end(), [&](const Site& s) {
              return s.motif == site.motif && s.vertex == site.vertex;
            });
        if (!seen) sites.push_back(site);
      }
    }
  }
}

std::vector<Prediction> LabeledMotifPredictor::Predict(ProteinId p) const {
  const ScopedItemTimer timer(kSpanScore, kHistScoreUs, p, 0, 1);
  std::vector<double> scores(context_.categories.size(), 0.0);
  for (const Site& site : index_[p]) {
    ObsIncrement(kObsVotes);
    const LabeledMotif& motif = motifs_[site.motif];
    std::vector<double> delta(context_.categories.size(), 0.0);
    if (mode_ == DeltaMode::kSchemeLabels) {
      // delta_g(v, x): how many of v's scheme labels fall under category x.
      // A label more general than every category contributes nothing.
      for (TermId label : motif.scheme[site.vertex]) {
        const auto ancestors = ontology_.AncestorsOf(label);
        for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
          if (std::binary_search(ancestors.begin(), ancestors.end(),
                                 context_.categories[ci])) {
            delta[ci] += 1.0;
          }
        }
      }
    } else {
      // Ablation: frequency of category x among the proteins at vertex v
      // across g's occurrences, excluding p itself (leave-one-out).
      for (const MotifOccurrence& occ : motif.occurrences) {
        const VertexId q = occ.proteins[site.vertex];
        if (q == p) continue;
        for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
          if (context_.HasCategory(q, context_.categories[ci])) {
            delta[ci] += 1.0;
          }
        }
      }
    }
    for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
      scores[ci] += delta[ci] * motif.strength;
    }
  }
  // Eq. 5 only defines the ranking among voted categories — the shared
  // ranking tail normalizes by the max vote and settles the unvoted tail by
  // category prior.
  return RankCategories(context_, scores, priors_);
}

double LabeledMotifPredictor::CoverageOfAnnotated() const {
  size_t annotated = 0;
  size_t covered = 0;
  for (ProteinId p = 0; p < index_.size(); ++p) {
    if (!context_.IsAnnotated(p)) continue;
    ++annotated;
    if (Covers(p)) ++covered;
  }
  return annotated == 0
             ? 0.0
             : static_cast<double>(covered) / static_cast<double>(annotated);
}

}  // namespace lamo
