#ifndef LAMO_PREDICT_PREDICTOR_H_
#define LAMO_PREDICT_PREDICTOR_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "ontology/annotation.h"
#include "ontology/ontology.h"

namespace lamo {

/// One scored candidate function for a protein.
struct Prediction {
  TermId category = kInvalidTerm;
  double score = 0.0;
};

/// Shared inputs of all function-prediction methods: the PPI network and
/// each protein's known top-level functional categories (the paper
/// generalizes all annotations to yeast's top 13 key functions before
/// computing precision/recall).
struct PredictionContext {
  /// The PPI network; indices are protein ids.
  const Graph* ppi = nullptr;
  /// The candidate categories (ascending term ids).
  std::vector<TermId> categories;
  /// Known categories per protein (ascending), empty when unannotated.
  std::vector<std::vector<TermId>> protein_categories;

  /// True iff protein `p` has at least one known category.
  bool IsAnnotated(ProteinId p) const {
    return !protein_categories[p].empty();
  }
  /// True iff `p` is known to carry category `c`.
  bool HasCategory(ProteinId p, TermId c) const;
  /// Fraction of annotated proteins carrying category `c` (the prior).
  double CategoryPrior(TermId c) const;
};

/// Interface of a function-prediction method under leave-one-out: Predict(p)
/// must not use p's own annotations (they are the held-out ground truth),
/// only the rest of the network.
class FunctionPredictor {
 public:
  virtual ~FunctionPredictor() = default;

  /// Display name ("NC", "Chi2", "PRODISTIN", "MRF", "LabeledMotif").
  virtual std::string name() const = 0;

  /// Scores every category for protein `p`, sorted by descending score
  /// (ties by ascending category id). May return fewer entries when the
  /// method has no signal for `p`.
  virtual std::vector<Prediction> Predict(ProteinId p) const = 0;

  /// True when the method has signal for `p` (serving short-circuits
  /// uncovered proteins into a "no prediction" line). Backends whose
  /// signature exists for every protein keep the default.
  virtual bool Covers(ProteinId p) const {
    (void)p;
    return true;
  }
};

/// Sorts predictions by descending score, ties by ascending category.
void SortPredictions(std::vector<Prediction>* predictions);

/// Shared ranking tail of every registered backend: orders all categories by
/// descending raw score, breaking ties by descending category prior and then
/// ascending category id, and normalizes scores into [0, 1] by the max raw
/// score (an all-zero score vector stays all-zero). `scores` and `priors`
/// are indexed like `context.categories`. Increments `predict.predictions`
/// when the ranking carries signal (max raw score > 0), so report invariants
/// can compare it against the backend's `predict.votes`.
std::vector<Prediction> RankCategories(const PredictionContext& context,
                                       const std::vector<double>& scores,
                                       const std::vector<double>& priors);

}  // namespace lamo

#endif  // LAMO_PREDICT_PREDICTOR_H_
