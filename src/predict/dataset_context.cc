#include "predict/dataset_context.h"

namespace lamo {

PredictionContext BuildPredictionContext(const SyntheticDataset& dataset) {
  PredictionContext context;
  context.ppi = &dataset.ppi;
  context.categories = dataset.categories;
  context.protein_categories.resize(dataset.ppi.num_vertices());
  for (ProteinId p = 0; p < dataset.ppi.num_vertices(); ++p) {
    context.protein_categories[p] = dataset.CategoriesOf(p);
  }
  return context;
}

}  // namespace lamo
