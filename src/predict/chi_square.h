#ifndef LAMO_PREDICT_CHI_SQUARE_H_
#define LAMO_PREDICT_CHI_SQUARE_H_

#include "predict/predictor.h"

namespace lamo {

/// The chi-square method of Hishigaki et al.: for protein p and function x,
/// score by the chi-square statistic (n_x - e_x)^2 / e_x comparing the
/// observed number n_x of p's neighbors with function x against the number
/// e_x expected from x's overall frequency in the dataset. Under-represented
/// functions (n < e) receive a negated statistic so that enrichment, not
/// mere deviation, ranks first.
class ChiSquarePredictor : public FunctionPredictor {
 public:
  /// `context` must outlive the predictor. Priors are precomputed here.
  explicit ChiSquarePredictor(const PredictionContext& context);

  std::string name() const override { return "Chi2"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

 private:
  const PredictionContext& context_;
  std::vector<double> priors_;  // aligned with context_.categories
};

}  // namespace lamo

#endif  // LAMO_PREDICT_CHI_SQUARE_H_
