#ifndef LAMO_PREDICT_NEIGHBOR_COUNTING_H_
#define LAMO_PREDICT_NEIGHBOR_COUNTING_H_

#include "predict/predictor.h"

namespace lamo {

/// The neighbor-counting method of Schwikowski, Uetz & Fields: a protein is
/// labeled with the functions occurring most frequently among its direct
/// interaction partners; the k most frequent functions are its k most likely
/// functions.
class NeighborCountingPredictor : public FunctionPredictor {
 public:
  /// `context` must outlive the predictor.
  explicit NeighborCountingPredictor(const PredictionContext& context)
      : context_(context) {}

  std::string name() const override { return "NC"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

 private:
  const PredictionContext& context_;
};

}  // namespace lamo

#endif  // LAMO_PREDICT_NEIGHBOR_COUNTING_H_
