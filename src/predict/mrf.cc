#include "predict/mrf.h"

#include <cmath>

#include "util/logging.h"

namespace lamo {
namespace {

double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

MrfPredictor::MrfPredictor(const PredictionContext& context,
                           const MrfConfig& config)
    : context_(context), config_(config) {
  const Graph& ppi = *context_.ppi;
  const size_t num_proteins = ppi.num_vertices();
  const size_t num_categories = context_.categories.size();
  parameters_.resize(num_categories);
  marginals_.assign(num_categories,
                    std::vector<double>(num_proteins, 0.0));

  for (size_t ci = 0; ci < num_categories; ++ci) {
    const TermId c = context_.categories[ci];
    const double prior = context_.CategoryPrior(c);

    // --- Pseudo-likelihood fit on annotated proteins. ---
    // Features per protein: M1 = annotated neighbors with c, M0 = annotated
    // neighbors without c. Initialize near the independent model.
    Parameters& params = parameters_[ci];
    params.alpha = std::log(std::max(prior, 1e-6) /
                            std::max(1.0 - prior, 1e-6));
    params.beta = 0.0;
    params.gamma = 0.0;

    std::vector<ProteinId> train;
    std::vector<double> m1(num_proteins, 0.0), m0(num_proteins, 0.0);
    for (ProteinId p = 0; p < num_proteins; ++p) {
      if (!context_.IsAnnotated(p)) continue;
      train.push_back(p);
      for (VertexId q : ppi.Neighbors(p)) {
        if (!context_.IsAnnotated(q)) continue;
        if (context_.HasCategory(q, c)) {
          m1[p] += 1.0;
        } else {
          m0[p] += 1.0;
        }
      }
    }
    if (!train.empty()) {
      const double scale = 1.0 / static_cast<double>(train.size());
      for (size_t iter = 0; iter < config_.fit_iterations; ++iter) {
        double ga = 0.0, gb = 0.0, gg = 0.0;
        for (ProteinId p : train) {
          const double y = context_.HasCategory(p, c) ? 1.0 : 0.0;
          const double mu = Sigmoid(params.alpha + params.beta * m1[p] +
                                    params.gamma * m0[p]);
          const double err = y - mu;
          ga += err;
          gb += err * m1[p];
          gg += err * m0[p];
        }
        params.alpha += config_.learning_rate * ga * scale;
        params.beta += config_.learning_rate * gb * scale;
        params.gamma += config_.learning_rate * gg * scale;
      }
    }

    // --- Mean-field inference for latent (unannotated) proteins. ---
    std::vector<double>& marginal = marginals_[ci];
    for (ProteinId p = 0; p < num_proteins; ++p) {
      marginal[p] = context_.IsAnnotated(p)
                        ? (context_.HasCategory(p, c) ? 1.0 : 0.0)
                        : prior;
    }
    for (size_t sweep = 0; sweep < config_.mean_field_iterations; ++sweep) {
      for (ProteinId p = 0; p < num_proteins; ++p) {
        if (context_.IsAnnotated(p)) continue;  // observed: clamped
        const double updated = Conditional(ci, p, marginal);
        marginal[p] = 0.5 * marginal[p] + 0.5 * updated;  // damped
      }
    }
  }
}

double MrfPredictor::Conditional(size_t category_index, ProteinId p,
                                 const std::vector<double>& marginals) const {
  const Parameters& params = parameters_[category_index];
  double m1 = 0.0, m0 = 0.0;
  for (VertexId q : context_.ppi->Neighbors(p)) {
    m1 += marginals[q];
    m0 += 1.0 - marginals[q];
  }
  return Sigmoid(params.alpha + params.beta * m1 + params.gamma * m0);
}

std::vector<Prediction> MrfPredictor::Predict(ProteinId p) const {
  std::vector<Prediction> predictions;
  predictions.reserve(context_.categories.size());
  for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
    // Leave-one-out: p's own observed label is not used — the score is its
    // conditional given the (clamped or inferred) neighborhood only.
    predictions.push_back(
        {context_.categories[ci], Conditional(ci, p, marginals_[ci])});
  }
  SortPredictions(&predictions);
  return predictions;
}

}  // namespace lamo
