#include "predict/role_similarity.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Role-vector cells computed (n x kRoleIterations per network).
const size_t kObsVectorCells = ObsCounterId("role.vector_cells");
/// One vote = one annotated protein contributing its similarity-weighted
/// categories to a query's scores.
const size_t kObsVotes = ObsCounterId("predict.votes");
/// Per-protein scoring latency; shared with the other backends.
const size_t kHistScoreUs = ObsHistogramId("predict.score_us");
const size_t kSpanScore = ObsSpanId("predict.score");

}  // namespace

std::vector<double> ComputeRoleVectors(const Graph& ppi, size_t iterations) {
  const size_t n = ppi.num_vertices();
  std::vector<double> vectors(n * iterations, 0.0);
  // walks[p] = #walks of length t starting at p; t = 0 is the constant 1,
  // so the first recurrence step yields the degree.
  std::vector<double> walks(n, 1.0);
  const size_t grain = 256;
  for (size_t t = 0; t < iterations; ++t) {
    walks = ParallelMap(n, grain, [&](size_t p) {
      double sum = 0.0;
      for (const VertexId q : ppi.Neighbors(static_cast<VertexId>(p))) {
        sum += walks[q];
      }
      return sum;
    });
    for (size_t p = 0; p < n; ++p) {
      vectors[p * iterations + t] = std::log1p(walks[p]);
    }
  }
  // Column normalization: every feature lands in [0, 1] so no walk depth
  // dominates the L2 distance.
  for (size_t t = 0; t < iterations; ++t) {
    double max = 0.0;
    for (size_t p = 0; p < n; ++p) {
      max = std::max(max, vectors[p * iterations + t]);
    }
    if (max <= 0.0) continue;
    for (size_t p = 0; p < n; ++p) {
      vectors[p * iterations + t] /= max;
    }
  }
  ObsAdd(kObsVectorCells, vectors.size());
  return vectors;
}

RolePredictor::RolePredictor(const PredictionContext& context)
    : RolePredictor(context, ComputeRoleVectors(*context.ppi),
                    kRoleIterations) {}

RolePredictor::RolePredictor(const PredictionContext& context,
                             std::vector<double> vectors, size_t dim)
    : context_(context), vectors_(std::move(vectors)), dim_(dim) {
  LAMO_CHECK_GT(dim_, size_t{0});
  LAMO_CHECK_EQ(vectors_.size(), context_.ppi->num_vertices() * dim_)
      << "role vector matrix shape";
  priors_.reserve(context_.categories.size());
  for (TermId c : context_.categories) {
    priors_.push_back(context_.CategoryPrior(c));
  }
  for (ProteinId p = 0; p < context_.protein_categories.size(); ++p) {
    if (context_.IsAnnotated(p)) annotated_.push_back(p);
  }
}

double RolePredictor::Similarity(ProteinId a, ProteinId b) const {
  const double* ra = vectors_.data() + static_cast<size_t>(a) * dim_;
  const double* rb = vectors_.data() + static_cast<size_t>(b) * dim_;
  double sq = 0.0;
  for (size_t t = 0; t < dim_; ++t) {
    const double d = ra[t] - rb[t];
    sq += d * d;
  }
  return 1.0 / (1.0 + std::sqrt(sq));
}

std::vector<Prediction> RolePredictor::Predict(ProteinId p) const {
  const ScopedItemTimer timer(kSpanScore, kHistScoreUs, p, 0, 1);
  std::vector<double> scores(context_.categories.size(), 0.0);
  for (const ProteinId q : annotated_) {
    if (q == p) continue;  // leave-one-out: the query never votes
    const double sim = Similarity(p, q);
    ObsIncrement(kObsVotes);
    for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
      if (context_.HasCategory(q, context_.categories[ci])) {
        scores[ci] += sim;
      }
    }
  }
  return RankCategories(context_, scores, priors_);
}

}  // namespace lamo
