#include "predict/evaluation.h"

#include <algorithm>

#include "util/logging.h"

namespace lamo {

PrCurve EvaluateLeaveOneOut(const FunctionPredictor& predictor,
                            const PredictionContext& context,
                            const EvaluationConfig& config) {
  PrCurve curve;
  curve.method = predictor.name();

  std::vector<ProteinId> proteins = config.evaluation_set;
  if (proteins.empty()) {
    for (ProteinId p = 0; p < context.protein_categories.size(); ++p) {
      if (context.IsAnnotated(p)) proteins.push_back(p);
    }
  }
  const size_t max_k =
      config.max_k != 0 ? config.max_k : context.categories.size();

  // Score once per protein, then sweep k.
  std::vector<std::vector<Prediction>> all_predictions;
  all_predictions.reserve(proteins.size());
  size_t total_true = 0;
  for (ProteinId p : proteins) {
    all_predictions.push_back(predictor.Predict(p));
    total_true += context.protein_categories[p].size();
  }

  for (size_t k = 1; k <= max_k; ++k) {
    size_t correct = 0;
    size_t predicted = 0;
    for (size_t i = 0; i < proteins.size(); ++i) {
      const ProteinId p = proteins[i];
      const auto& predictions = all_predictions[i];
      const size_t take = std::min(k, predictions.size());
      predicted += take;
      for (size_t j = 0; j < take; ++j) {
        if (context.HasCategory(p, predictions[j].category)) ++correct;
      }
    }
    PrPoint point;
    point.k = k;
    point.precision = predicted == 0 ? 0.0
                                     : static_cast<double>(correct) /
                                           static_cast<double>(predicted);
    point.recall = total_true == 0 ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(total_true);
    curve.points.push_back(point);
  }
  return curve;
}

PrCurve EvaluateLeaveOneOutMacro(const FunctionPredictor& predictor,
                                 const PredictionContext& context,
                                 const EvaluationConfig& config) {
  PrCurve curve;
  curve.method = predictor.name();

  std::vector<ProteinId> proteins = config.evaluation_set;
  if (proteins.empty()) {
    for (ProteinId p = 0; p < context.protein_categories.size(); ++p) {
      if (context.IsAnnotated(p)) proteins.push_back(p);
    }
  }
  if (proteins.empty()) return curve;
  const size_t max_k =
      config.max_k != 0 ? config.max_k : context.categories.size();

  std::vector<std::vector<Prediction>> all_predictions;
  all_predictions.reserve(proteins.size());
  for (ProteinId p : proteins) {
    all_predictions.push_back(predictor.Predict(p));
  }

  for (size_t k = 1; k <= max_k; ++k) {
    double precision_sum = 0.0;
    double recall_sum = 0.0;
    for (size_t i = 0; i < proteins.size(); ++i) {
      const ProteinId p = proteins[i];
      const auto& predictions = all_predictions[i];
      const size_t take = std::min(k, predictions.size());
      size_t correct = 0;
      for (size_t j = 0; j < take; ++j) {
        if (context.HasCategory(p, predictions[j].category)) ++correct;
      }
      if (take > 0) {
        precision_sum += static_cast<double>(correct) /
                         static_cast<double>(take);
      }
      const size_t truths = context.protein_categories[p].size();
      if (truths > 0) {
        recall_sum += static_cast<double>(correct) /
                      static_cast<double>(truths);
      }
    }
    PrPoint point;
    point.k = k;
    point.precision = precision_sum / static_cast<double>(proteins.size());
    point.recall = recall_sum / static_cast<double>(proteins.size());
    curve.points.push_back(point);
  }
  return curve;
}

double AreaUnderPrCurve(const PrCurve& curve) {
  if (curve.points.empty()) return 0.0;
  // Points ordered by k have nondecreasing recall; integrate precision over
  // recall with the trapezoid rule, anchoring at (0, first precision).
  double area = 0.0;
  double prev_recall = 0.0;
  double prev_precision = curve.points.front().precision;
  for (const PrPoint& point : curve.points) {
    area += (point.recall - prev_recall) *
            0.5 * (point.precision + prev_precision);
    prev_recall = point.recall;
    prev_precision = point.precision;
  }
  return area;
}

}  // namespace lamo
