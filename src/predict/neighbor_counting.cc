#include "predict/neighbor_counting.h"

namespace lamo {

std::vector<Prediction> NeighborCountingPredictor::Predict(
    ProteinId p) const {
  std::vector<Prediction> predictions;
  predictions.reserve(context_.categories.size());
  for (TermId c : context_.categories) {
    double count = 0.0;
    for (VertexId q : context_.ppi->Neighbors(p)) {
      if (context_.HasCategory(q, c)) count += 1.0;
    }
    predictions.push_back({c, count});
  }
  SortPredictions(&predictions);
  return predictions;
}

}  // namespace lamo
