#ifndef LAMO_PREDICT_ROLE_SIMILARITY_H_
#define LAMO_PREDICT_ROLE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "predict/predictor.h"

namespace lamo {

/// Walk-count iterations per role vector (and hence its dimension): feature
/// t of protein p is log(1 + #walks of length t+1 starting at p), column
/// normalized. Holme & Huss score two proteins as role-equivalent when
/// their iterated neighborhoods match; truncating the iteration at a fixed
/// depth gives each protein a finite embedding the predictor can compare.
inline constexpr size_t kRoleIterations = 5;

/// Computes the flat n x `iterations` role-vector matrix of `ppi`. Walk
/// counts are accumulated per vertex over its sorted neighbor list and the
/// per-vertex loop is ParallelMap'ed, so the doubles are bit-identical for
/// any thread count — the property the offline/serving byte-identity
/// contract rests on.
std::vector<double> ComputeRoleVectors(const Graph& ppi,
                                       size_t iterations = kRoleIterations);

/// Holme-style role-similarity prediction: each annotated protein votes for
/// its categories with weight 1 / (1 + ||r_p - r_q||_2), the similarity of
/// the truncated role embeddings. Like GDS (and unlike the neighborhood
/// baselines) this can transfer annotations between proteins that are far
/// apart in the network but play the same structural role.
class RolePredictor : public FunctionPredictor {
 public:
  /// Computes role vectors from context.ppi (offline `lamo predict`).
  explicit RolePredictor(const PredictionContext& context);

  /// Adopts precomputed vectors (flat n x dim, e.g. from a v3 snapshot).
  RolePredictor(const PredictionContext& context, std::vector<double> vectors,
                size_t dim);

  std::string name() const override { return "RoleSimilarity"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

  /// Flat n x dim() role-vector matrix (snapshot packing reads this).
  const std::vector<double>& vectors() const { return vectors_; }
  size_t dim() const { return dim_; }

  /// Role similarity in (0, 1]; symmetric. Exposed for tests.
  double Similarity(ProteinId a, ProteinId b) const;

 private:
  const PredictionContext& context_;
  std::vector<double> vectors_;
  size_t dim_;
  std::vector<double> priors_;
  std::vector<ProteinId> annotated_;  // ascending; the voting electorate
};

}  // namespace lamo

#endif  // LAMO_PREDICT_ROLE_SIMILARITY_H_
