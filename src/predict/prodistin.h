#ifndef LAMO_PREDICT_PRODISTIN_H_
#define LAMO_PREDICT_PRODISTIN_H_

#include <memory>
#include <vector>

#include "predict/predictor.h"

namespace lamo {

/// Parameters of the PRODISTIN pipeline.
struct ProdistinConfig {
  /// Cap on the number of proteins entering the O(n^3) BIONJ stage
  /// (highest-degree proteins are kept; the rest fall back to priors).
  /// 0 = no cap.
  size_t max_tree_proteins = 1000;
  /// A leaf's functional clade is the smallest enclosing subtree with at
  /// least this many annotated proteins besides itself.
  size_t min_clade_annotated = 3;
};

/// PRODISTIN [Brun et al. 2003]: computes the Czekanowski-Dice distance
/// between every pair of proteins from their interaction lists,
///
///   D(i,j) = |N(i) Δ N(j)| / (|N(i) ∪ N(j)| + |N(i) ∩ N(j)|),
///
/// with i and j added to both lists, builds a BIONJ neighbor-joining tree
/// from the distance matrix, and classifies a protein by the functions of
/// the annotated proteins sharing its smallest informative clade.
class ProdistinPredictor : public FunctionPredictor {
 public:
  /// Builds the distance matrix and BIONJ tree eagerly (the expensive part);
  /// `context` must outlive the predictor.
  ProdistinPredictor(const PredictionContext& context,
                     const ProdistinConfig& config = {});
  ~ProdistinPredictor() override;

  std::string name() const override { return "PRODISTIN"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

  /// Czekanowski-Dice distance between two proteins of the context's PPI
  /// (exposed for tests).
  static double CzekanowskiDice(const Graph& ppi, ProteinId a, ProteinId b);

 private:
  struct Impl;
  const PredictionContext& context_;
  ProdistinConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lamo

#endif  // LAMO_PREDICT_PRODISTIN_H_
