#include "predict/gds.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>

#include "graph/automorphism.h"
#include "graph/canonical.h"
#include "graph/graph_index.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// Signature cells written (n x 73 per network), so lamo_report_check can
/// assert the count is a multiple of the orbit dimension.
const size_t kObsSignatureCells = ObsCounterId("gds.signature_cells");
/// Connected induced 2..5-vertex subgraphs tallied during orbit counting.
const size_t kObsSubgraphs = ObsCounterId("gds.subgraphs");
/// One vote = one annotated protein contributing its similarity-weighted
/// categories to a query's scores.
const size_t kObsVotes = ObsCounterId("predict.votes");
/// Per-chunk orbit-counting latency; span args = [lo, size of chunk].
const size_t kHistCountUs = ObsHistogramId("gds.count_us");
const size_t kSpanCount = ObsSpanId("gds.count");
/// Per-protein scoring latency; shared with the other backends.
const size_t kHistScoreUs = ObsHistogramId("predict.score_us");
const size_t kSpanScore = ObsSpanId("predict.score");

/// Decodes a graph from its upper-triangle adjacency mask in the
/// GraphIndex::InducedBits layout: pair (i, j), i < j, lexicographic,
/// lowest bit first.
SmallGraph GraphFromMask(size_t k, uint32_t mask) {
  SmallGraph g(k);
  size_t bit = 0;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j, ++bit) {
      if ((mask >> bit) & 1u) g.AddEdge(i, j);
    }
  }
  return g;
}

size_t PairCount(size_t k) { return k * (k - 1) / 2; }

/// ESU over all connected induced subgraphs of size 2..5 that contain
/// `root` as their minimum vertex; each such subgraph is visited exactly
/// once (every recursion node of the size-5 ESU tree is a distinct
/// connected set). Tallies every member vertex's orbit.
class GdsEnumerator {
 public:
  GdsEnumerator(const GraphIndex& index, const GdsOrbitTable& table,
                std::atomic<uint64_t>* cells)
      : index_(index), table_(table), cells_(cells),
        marked_(index.num_vertices(), 0) {}

  uint64_t subgraphs() const { return subgraphs_; }

  void EnumerateRoot(VertexId root) {
    root_ = root;
    verts_[0] = root;
    std::vector<VertexId> ext;
    for (VertexId u : index_.Neighbors(root)) {
      if (u > root) ext.push_back(u);
    }
    marked_[root] = 1;
    for (VertexId u : ext) marked_[u] = 1;
    Extend(1, ext);  // drains ext, so unmark via the neighbor list
    marked_[root] = 0;
    for (VertexId u : index_.Neighbors(root)) {
      if (u > root) marked_[u] = 0;
    }
  }

 private:
  void Tally(size_t k) {
    const uint32_t mask = static_cast<uint32_t>(index_.InducedBits(verts_, k));
    const uint8_t* orbits = table_.OrbitsOfMask(k, mask);
    for (size_t i = 0; i < k; ++i) {
      cells_[static_cast<size_t>(verts_[i]) * kGdsOrbits + orbits[i]]
          .fetch_add(1, std::memory_order_relaxed);
    }
    ++subgraphs_;
  }

  void Extend(size_t sub_size, std::vector<VertexId>& ext) {
    if (sub_size >= 2) Tally(sub_size);
    if (sub_size == 5) return;
    // Wernicke's ESU: destructively pop w so later siblings cannot re-add
    // it, and extend with w's exclusive neighborhood (neighbors not already
    // in or adjacent to the current subgraph, tracked by marked_).
    while (!ext.empty()) {
      const VertexId w = ext.back();
      ext.pop_back();
      verts_[sub_size] = w;
      std::vector<VertexId> newly;
      for (VertexId u : index_.Neighbors(w)) {
        if (u > root_ && !marked_[u]) {
          marked_[u] = 1;
          newly.push_back(u);
        }
      }
      std::vector<VertexId> child = ext;
      child.insert(child.end(), newly.begin(), newly.end());
      Extend(sub_size + 1, child);
      for (VertexId u : newly) marked_[u] = 0;
    }
  }

  const GraphIndex& index_;
  const GdsOrbitTable& table_;
  std::atomic<uint64_t>* cells_;
  std::vector<uint8_t> marked_;
  VertexId verts_[5] = {0, 0, 0, 0, 0};
  VertexId root_ = 0;
  uint64_t subgraphs_ = 0;
};

}  // namespace

GdsOrbitTable::GdsOrbitTable() {
  // Enumerate every connected graph on 2..5 vertices, deduplicated by
  // canonical code.
  std::map<std::vector<uint8_t>, size_t> by_code;
  for (size_t k = 2; k <= 5; ++k) {
    const uint32_t masks = 1u << PairCount(k);
    for (uint32_t mask = 0; mask < masks; ++mask) {
      const SmallGraph g = GraphFromMask(k, mask);
      if (!g.IsConnected()) continue;
      CanonicalResult canon = Canonicalize(g);
      if (by_code.contains(canon.code)) continue;
      by_code.emplace(canon.code, graphlets_.size());
      graphlets_.push_back(
          {std::move(canon.graph), std::move(canon.code), {}});
    }
  }
  // Deterministic graphlet order: (size, edge count, canonical code).
  std::sort(graphlets_.begin(), graphlets_.end(),
            [](const Graphlet& a, const Graphlet& b) {
              if (a.canon.num_vertices() != b.canon.num_vertices()) {
                return a.canon.num_vertices() < b.canon.num_vertices();
              }
              if (a.canon.num_edges() != b.canon.num_edges()) {
                return a.canon.num_edges() < b.canon.num_edges();
              }
              return a.code < b.code;
            });
  by_code.clear();
  // Number the automorphism orbits sequentially across graphlets.
  size_t next_orbit = 0;
  for (size_t gi = 0; gi < graphlets_.size(); ++gi) {
    Graphlet& g = graphlets_[gi];
    by_code.emplace(g.code, gi);
    const std::vector<std::vector<uint32_t>> orbits = VertexOrbits(g.canon);
    g.orbit_of_vertex.assign(g.canon.num_vertices(), 0);
    for (const std::vector<uint32_t>& orbit : orbits) {
      for (uint32_t v : orbit) {
        g.orbit_of_vertex[v] = static_cast<uint8_t>(next_orbit);
      }
      ++next_orbit;
    }
  }
  LAMO_CHECK_EQ(graphlets_.size(), size_t{30})
      << "connected 2..5-vertex graphlet census";
  LAMO_CHECK_EQ(next_orbit, kGdsOrbits) << "graphlet orbit census";
  // Mask -> per-position orbit lookup, so the counting hot path never
  // canonicalizes: for every connected mask, map each original position
  // through the canonical labeling to its orbit id.
  for (size_t k = 2; k <= 5; ++k) {
    const uint32_t masks = 1u << PairCount(k);
    lookup_[k].assign(static_cast<size_t>(masks) * k, kUnusedSlot);
    for (uint32_t mask = 0; mask < masks; ++mask) {
      const SmallGraph g = GraphFromMask(k, mask);
      if (!g.IsConnected()) continue;
      const CanonicalResult canon = Canonicalize(g);
      const auto it = by_code.find(canon.code);
      LAMO_CHECK(it != by_code.end());
      const Graphlet& graphlet = graphlets_[it->second];
      for (uint32_t pos = 0; pos < k; ++pos) {
        lookup_[k][static_cast<size_t>(mask) * k +
                   canon.canonical_to_original[pos]] =
            graphlet.orbit_of_vertex[pos];
      }
    }
  }
}

const GdsOrbitTable& GdsOrbitTable::Get() {
  static const GdsOrbitTable* table = new GdsOrbitTable();
  return *table;
}

int GdsOrbitTable::OrbitOf(const SmallGraph& g, uint32_t v) const {
  if (g.num_vertices() < 2 || g.num_vertices() > 5 || !g.IsConnected()) {
    return -1;
  }
  const CanonicalResult canon = Canonicalize(g);
  for (const Graphlet& graphlet : graphlets_) {
    if (graphlet.code != canon.code) continue;
    for (uint32_t pos = 0; pos < g.num_vertices(); ++pos) {
      if (canon.canonical_to_original[pos] == v) {
        return graphlet.orbit_of_vertex[pos];
      }
    }
  }
  return -1;
}

std::vector<uint64_t> ComputeGdsSignatures(const Graph& ppi) {
  const size_t n = ppi.num_vertices();
  std::vector<uint64_t> signatures(n * kGdsOrbits, 0);
  if (n >= 2) {
    const GraphIndex index(ppi);
    const GdsOrbitTable& table = GdsOrbitTable::Get();
    // Orbit tallies are commutative integer adds, so relaxed atomics keep
    // the result exact and thread-count independent while letting chunks
    // touch overlapping subgraph members.
    std::vector<std::atomic<uint64_t>> cells(n * kGdsOrbits);
    std::atomic<uint64_t> total_subgraphs{0};
    const size_t grain = 16;
    ParallelForChunks(0, n, grain, [&](size_t chunk, size_t lo, size_t hi) {
      (void)chunk;
      const ScopedItemTimer timer(kSpanCount, kHistCountUs, lo, hi - lo, 2);
      GdsEnumerator enumerator(index, table, cells.data());
      for (size_t root = lo; root < hi; ++root) {
        enumerator.EnumerateRoot(static_cast<VertexId>(root));
      }
      total_subgraphs.fetch_add(enumerator.subgraphs(),
                                std::memory_order_relaxed);
    });
    for (size_t i = 0; i < signatures.size(); ++i) {
      signatures[i] = cells[i].load(std::memory_order_relaxed);
    }
    ObsAdd(kObsSubgraphs, total_subgraphs.load(std::memory_order_relaxed));
  }
  ObsAdd(kObsSignatureCells, signatures.size());
  return signatures;
}

GdsPredictor::GdsPredictor(const PredictionContext& context)
    : GdsPredictor(context, ComputeGdsSignatures(*context.ppi)) {}

GdsPredictor::GdsPredictor(const PredictionContext& context,
                           std::vector<uint64_t> signatures)
    : context_(context), signatures_(std::move(signatures)) {
  LAMO_CHECK_EQ(signatures_.size(),
                context_.ppi->num_vertices() * kGdsOrbits)
      << "GDS signature matrix shape";
  priors_.reserve(context_.categories.size());
  for (TermId c : context_.categories) {
    priors_.push_back(context_.CategoryPrior(c));
  }
  for (ProteinId p = 0; p < context_.protein_categories.size(); ++p) {
    if (context_.IsAnnotated(p)) annotated_.push_back(p);
  }
}

double GdsPredictor::Similarity(ProteinId a, ProteinId b) const {
  const uint64_t* sa = signatures_.data() + static_cast<size_t>(a) * kGdsOrbits;
  const uint64_t* sb = signatures_.data() + static_cast<size_t>(b) * kGdsOrbits;
  double distance = 0.0;
  for (size_t o = 0; o < kGdsOrbits; ++o) {
    const double u = static_cast<double>(sa[o]);
    const double v = static_cast<double>(sb[o]);
    // Log scaling keeps the huge dense orbits (edges, wedges) from
    // swamping the rare ones; each term lies in [0, 1).
    distance += std::abs(std::log(u + 1.0) - std::log(v + 1.0)) /
                std::log(std::max(u, v) + 2.0);
  }
  return 1.0 - distance / static_cast<double>(kGdsOrbits);
}

std::vector<Prediction> GdsPredictor::Predict(ProteinId p) const {
  const ScopedItemTimer timer(kSpanScore, kHistScoreUs, p, 0, 1);
  std::vector<double> scores(context_.categories.size(), 0.0);
  // Every annotated protein votes for its categories, weighted by how
  // similar its graphlet degree signature is to the query's. Fixed
  // ascending electorate order keeps the float accumulation deterministic.
  for (const ProteinId q : annotated_) {
    if (q == p) continue;  // leave-one-out: the query never votes
    const double sim = Similarity(p, q);
    if (sim <= 0.0) continue;
    ObsIncrement(kObsVotes);
    for (size_t ci = 0; ci < context_.categories.size(); ++ci) {
      if (context_.HasCategory(q, context_.categories[ci])) {
        scores[ci] += sim;
      }
    }
  }
  return RankCategories(context_, scores, priors_);
}

}  // namespace lamo
