#include "predict/predictor.h"

#include <algorithm>

namespace lamo {

bool PredictionContext::HasCategory(ProteinId p, TermId c) const {
  const auto& cats = protein_categories[p];
  return std::binary_search(cats.begin(), cats.end(), c);
}

double PredictionContext::CategoryPrior(TermId c) const {
  size_t annotated = 0;
  size_t carrying = 0;
  for (ProteinId p = 0; p < protein_categories.size(); ++p) {
    if (protein_categories[p].empty()) continue;
    ++annotated;
    if (HasCategory(p, c)) ++carrying;
  }
  if (annotated == 0) return 0.0;
  return static_cast<double>(carrying) / static_cast<double>(annotated);
}

void SortPredictions(std::vector<Prediction>* predictions) {
  std::stable_sort(predictions->begin(), predictions->end(),
                   [](const Prediction& a, const Prediction& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.category < b.category;
                   });
}

}  // namespace lamo
