#include "predict/predictor.h"

#include <algorithm>

#include "obs/obs.h"

namespace lamo {
namespace {

/// One positive-signal ranking emitted by RankCategories. Every elementary
/// vote a backend records implies at most one ranking, so
/// predict.votes >= predict.predictions whenever predictions were emitted
/// (enforced by lamo_report_check).
const size_t kObsPredictions = ObsCounterId("predict.predictions");

}  // namespace

bool PredictionContext::HasCategory(ProteinId p, TermId c) const {
  const auto& cats = protein_categories[p];
  return std::binary_search(cats.begin(), cats.end(), c);
}

double PredictionContext::CategoryPrior(TermId c) const {
  size_t annotated = 0;
  size_t carrying = 0;
  for (ProteinId p = 0; p < protein_categories.size(); ++p) {
    if (protein_categories[p].empty()) continue;
    ++annotated;
    if (HasCategory(p, c)) ++carrying;
  }
  if (annotated == 0) return 0.0;
  return static_cast<double>(carrying) / static_cast<double>(annotated);
}

std::vector<Prediction> RankCategories(const PredictionContext& context,
                                       const std::vector<double>& scores,
                                       const std::vector<double>& priors) {
  // z: normalize into [0, 1].
  const double z =
      scores.empty() ? 0.0 : *std::max_element(scores.begin(), scores.end());
  if (z > 0.0) ObsIncrement(kObsPredictions);
  std::vector<size_t> order(scores.size());
  for (size_t ci = 0; ci < scores.size(); ++ci) order[ci] = ci;
  // Rank by raw score; categories the method says nothing about (equal
  // scores, typically 0) fall back to the category prior. The prior
  // fallback is the protocol choice for the tail of the precision/recall
  // curve and is reported in EXPERIMENTS.md.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (priors[a] != priors[b]) return priors[a] > priors[b];
    return context.categories[a] < context.categories[b];
  });
  std::vector<Prediction> predictions;
  predictions.reserve(scores.size());
  for (size_t ci : order) {
    predictions.push_back(
        {context.categories[ci], z > 0.0 ? scores[ci] / z : 0.0});
  }
  return predictions;
}

void SortPredictions(std::vector<Prediction>* predictions) {
  std::stable_sort(predictions->begin(), predictions->end(),
                   [](const Prediction& a, const Prediction& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.category < b.category;
                   });
}

}  // namespace lamo
