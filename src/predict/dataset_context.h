#ifndef LAMO_PREDICT_DATASET_CONTEXT_H_
#define LAMO_PREDICT_DATASET_CONTEXT_H_

#include "predict/predictor.h"
#include "synth/dataset.h"

namespace lamo {

/// Builds the prediction context from a synthetic dataset: every protein's
/// direct annotations are generalized to the dataset's top-level categories
/// (the paper's "top 13 key functions" protocol). The returned context
/// keeps a pointer to `dataset.ppi`, so the dataset must outlive it.
PredictionContext BuildPredictionContext(const SyntheticDataset& dataset);

}  // namespace lamo

#endif  // LAMO_PREDICT_DATASET_CONTEXT_H_
