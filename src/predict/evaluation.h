#ifndef LAMO_PREDICT_EVALUATION_H_
#define LAMO_PREDICT_EVALUATION_H_

#include <string>
#include <vector>

#include "predict/predictor.h"

namespace lamo {

/// One point of a precision/recall curve.
struct PrPoint {
  size_t k = 0;  // number of top predictions taken per protein
  double precision = 0.0;
  double recall = 0.0;
};

/// The full curve of one method.
struct PrCurve {
  std::string method;
  std::vector<PrPoint> points;
};

/// Options of the leave-one-out evaluation.
struct EvaluationConfig {
  /// Evaluate only these proteins; empty = all annotated proteins. (Used to
  /// restrict the Figure-9 comparison to motif-covered proteins, with the
  /// restriction reported alongside.)
  std::vector<ProteinId> evaluation_set;
  /// Largest k of the curve; 0 = number of categories.
  size_t max_k = 0;
};

/// Leave-one-out evaluation over the annotated proteins: for each protein p
/// the predictor scores all categories with p's own annotations hidden; for
/// each k the top-k predictions are compared against p's true categories,
/// micro-averaged across proteins (the protocol of Deng et al., which the
/// paper's Figure 9 follows):
///
///   precision(k) = sum_p |top_k(p) ∩ true(p)| / sum_p min(k, #scored(p))
///   recall(k)    = sum_p |top_k(p) ∩ true(p)| / sum_p |true(p)|
PrCurve EvaluateLeaveOneOut(const FunctionPredictor& predictor,
                            const PredictionContext& context,
                            const EvaluationConfig& config = {});

/// Macro-averaged variant: precision/recall are computed per protein and
/// averaged with equal weight, so hub proteins with many annotations do not
/// dominate the curve. Reported alongside the micro average when per-protein
/// fairness matters.
PrCurve EvaluateLeaveOneOutMacro(const FunctionPredictor& predictor,
                                 const PredictionContext& context,
                                 const EvaluationConfig& config = {});

/// Area under the (recall, precision) polyline — a scalar summary used by
/// tests to compare methods ("LabeledMotif beats NC").
double AreaUnderPrCurve(const PrCurve& curve);

}  // namespace lamo

#endif  // LAMO_PREDICT_EVALUATION_H_
