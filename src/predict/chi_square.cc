#include "predict/chi_square.h"

namespace lamo {

ChiSquarePredictor::ChiSquarePredictor(const PredictionContext& context)
    : context_(context) {
  priors_.reserve(context_.categories.size());
  for (TermId c : context_.categories) {
    priors_.push_back(context_.CategoryPrior(c));
  }
}

std::vector<Prediction> ChiSquarePredictor::Predict(ProteinId p) const {
  // Count annotated neighbors once.
  size_t annotated_neighbors = 0;
  for (VertexId q : context_.ppi->Neighbors(p)) {
    if (context_.IsAnnotated(q)) ++annotated_neighbors;
  }
  std::vector<Prediction> predictions;
  predictions.reserve(context_.categories.size());
  for (size_t i = 0; i < context_.categories.size(); ++i) {
    const TermId c = context_.categories[i];
    double observed = 0.0;
    for (VertexId q : context_.ppi->Neighbors(p)) {
      if (context_.HasCategory(q, c)) observed += 1.0;
    }
    const double expected =
        priors_[i] * static_cast<double>(annotated_neighbors);
    double score = 0.0;
    if (expected > 0.0) {
      const double deviation = observed - expected;
      score = deviation * deviation / expected;
      if (deviation < 0.0) score = -score;  // depletion must not rank first
    } else if (observed > 0.0) {
      score = observed;  // function unseen globally but present locally
    }
    predictions.push_back({c, score});
  }
  SortPredictions(&predictions);
  return predictions;
}

}  // namespace lamo
