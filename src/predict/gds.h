#ifndef LAMO_PREDICT_GDS_H_
#define LAMO_PREDICT_GDS_H_

#include <cstdint>
#include <vector>

#include "graph/small_graph.h"
#include "predict/predictor.h"

namespace lamo {

/// Number of automorphism orbits across the 30 connected graphlets on 2..5
/// vertices — the dimension of a graphlet degree signature (Milenković &
/// Pržulj, "Uncovering biological network function via graphlet degree
/// signatures").
inline constexpr size_t kGdsOrbits = 73;

/// The orbit table over all connected graphlets on 2..5 vertices, built once
/// at first use: graphlets are enumerated by adjacency bitmask, deduplicated
/// by canonical code, ordered by (size, edge count, canonical code), and
/// their automorphism orbits numbered sequentially in that order. The total
/// is asserted to be kGdsOrbits. Orbit ids are therefore deterministic for
/// this build but are not claimed to match Pržulj's published numbering —
/// correctness is pinned by the brute-force differential test instead.
class GdsOrbitTable {
 public:
  /// The process-wide table (thread-safe lazy construction).
  static const GdsOrbitTable& Get();

  /// 30 connected graphlets on 2..5 vertices.
  size_t num_graphlets() const { return graphlets_.size(); }

  /// Orbit id (0..72) of vertex `v` of `g`, or -1 when `g` is not a
  /// connected graph on 2..5 vertices. Canonicalizes `g`; meant for tests
  /// and closed-form checks, not hot paths.
  int OrbitOf(const SmallGraph& g, uint32_t v) const;

  /// Per-position orbit ids of the size-`k` subgraph whose upper-triangle
  /// adjacency is `mask` (GraphIndex::InducedBits bit layout: pair (i, j)
  /// with i < j, lexicographic, lowest bit first). Returns a pointer to `k`
  /// bytes; only valid when ConnectedMask(k, mask).
  const uint8_t* OrbitsOfMask(size_t k, uint32_t mask) const {
    return lookup_[k].data() + static_cast<size_t>(mask) * k;
  }

  /// True iff `mask` describes a connected graph on `k` vertices (2..5).
  bool ConnectedMask(size_t k, uint32_t mask) const {
    return lookup_[k][static_cast<size_t>(mask) * k] != kUnusedSlot;
  }

 private:
  static constexpr uint8_t kUnusedSlot = 0xFF;

  struct Graphlet {
    SmallGraph canon;                    // canonical representative
    std::vector<uint8_t> code;           // canonical code (dedupe + order)
    std::vector<uint8_t> orbit_of_vertex;  // canonical position -> orbit id
  };

  GdsOrbitTable();

  std::vector<Graphlet> graphlets_;
  /// lookup_[k][mask * k + position] = orbit id of `position` in the graph
  /// decoded from `mask`; kUnusedSlot for disconnected masks. Indexed by
  /// subgraph size k = 2..5 (slots 0..1 unused).
  std::vector<uint8_t> lookup_[6];
};

/// Computes the flat n x kGdsOrbits graphlet degree signature matrix of
/// `ppi`: signatures[p * kGdsOrbits + o] = number of connected induced
/// subgraphs on 2..5 vertices in which p touches orbit o. Enumeration is
/// ESU over the GraphIndex, parallelized over roots; counts are exact
/// integers, so the result is byte-identical for any thread count.
std::vector<uint64_t> ComputeGdsSignatures(const Graph& ppi);

/// Function prediction from graphlet degree signatures: proteins whose
/// 73-orbit signatures are similar play similar topological roles, so each
/// annotated protein votes for its categories with weight equal to its
/// signature similarity to the query. Leave-one-out holds by construction —
/// the query's own annotations never vote.
class GdsPredictor : public FunctionPredictor {
 public:
  /// Computes signatures from context.ppi (offline `lamo predict`).
  explicit GdsPredictor(const PredictionContext& context);

  /// Adopts precomputed signatures (size n x kGdsOrbits, e.g. from a v3
  /// snapshot); byte-identical to the computing constructor because
  /// ComputeGdsSignatures is deterministic.
  GdsPredictor(const PredictionContext& context,
               std::vector<uint64_t> signatures);

  std::string name() const override { return "GDS"; }
  std::vector<Prediction> Predict(ProteinId p) const override;

  /// Flat n x kGdsOrbits signature matrix (snapshot packing reads this).
  const std::vector<uint64_t>& signatures() const { return signatures_; }

  /// Signature similarity in (0, 1]: 1 minus the mean log-scaled per-orbit
  /// distance |log(u_i+1) - log(v_i+1)| / log(max(u_i, v_i) + 2).
  double Similarity(ProteinId a, ProteinId b) const;

 private:
  const PredictionContext& context_;
  std::vector<uint64_t> signatures_;
  std::vector<double> priors_;
  std::vector<ProteinId> annotated_;  // ascending; the voting electorate
};

}  // namespace lamo

#endif  // LAMO_PREDICT_GDS_H_
