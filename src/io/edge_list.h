#ifndef LAMO_IO_EDGE_LIST_H_
#define LAMO_IO_EDGE_LIST_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace lamo {

/// Writes a graph as a plain-text edge list:
///
///   # lamo edge list
///   vertices <n>
///   <a> <b>
///   ...
///
/// One undirected edge per line with a < b. Lines starting with '#' are
/// comments.
Status WriteEdgeList(const Graph& graph, const std::string& path);

/// Reads the format produced by WriteEdgeList. Duplicate edges and
/// self-links are dropped (same preprocessing the paper applies to BIND).
StatusOr<Graph> ReadEdgeList(const std::string& path);

}  // namespace lamo

#endif  // LAMO_IO_EDGE_LIST_H_
