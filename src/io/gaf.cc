#include "io/gaf.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/atomic_io.h"
#include "util/string_util.h"

namespace lamo {

Status WriteAnnotations(const AnnotationTable& annotations,
                        const Ontology& ontology, const std::string& path) {
  std::ostringstream out;
  out << "# lamo annotations\n";
  out << "proteins " << annotations.num_proteins() << "\n";
  for (ProteinId p = 0; p < annotations.num_proteins(); ++p) {
    for (TermId t : annotations.TermsOf(p)) {
      out << p << "\t" << ontology.TermName(t) << "\n";
    }
  }
  return WriteFileAtomic(path, out.str());
}

StatusOr<AnnotationTable> ReadAnnotations(const std::string& path,
                                          const Ontology& ontology) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  // Name -> id map built once (FindTerm is linear).
  std::map<std::string, TermId> ids;
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    ids[ontology.TermName(t)] = t;
  }

  std::string line;
  size_t line_number = 0;
  bool have_header = false;
  size_t num_proteins = 0;
  std::vector<std::pair<ProteinId, TermId>> pairs;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '!') continue;
    if (!have_header) {
      if (!StartsWith(trimmed, "proteins ")) {
        return Status::Corruption(path + ":" + std::to_string(line_number) +
                                  ": expected 'proteins <n>' header");
      }
      uint64_t n = 0;
      if (!ParseUint64(Trim(trimmed.substr(9)), &n)) {
        return Status::Corruption(path + ": bad protein count");
      }
      // Same sanity cap as the edge-list reader: the count sizes the
      // annotation table up front.
      if (n > 10'000'000) {
        return Status::Corruption(path + ": implausible protein count " +
                                  std::to_string(n));
      }
      num_proteins = static_cast<size_t>(n);
      have_header = true;
      continue;
    }
    const size_t tab = trimmed.find('\t');
    if (tab == std::string_view::npos) {
      return Status::Corruption(path + ":" + std::to_string(line_number) +
                                ": expected '<protein>\\t<term>'");
    }
    uint64_t protein = 0;
    if (!ParseUint64(Trim(trimmed.substr(0, tab)), &protein)) {
      return Status::Corruption(path + ":" + std::to_string(line_number) +
                                ": bad protein id");
    }
    const std::string term_name(Trim(trimmed.substr(tab + 1)));
    auto it = ids.find(term_name);
    if (it == ids.end()) {
      return Status::Corruption(path + ":" + std::to_string(line_number) +
                                ": unknown term " + term_name);
    }
    pairs.emplace_back(static_cast<ProteinId>(protein), it->second);
  }
  if (!have_header) return Status::Corruption(path + ": missing header");

  AnnotationTable table(num_proteins);
  for (const auto& [p, t] : pairs) {
    LAMO_RETURN_IF_ERROR(table.Annotate(p, t));
  }
  return table;
}

}  // namespace lamo
