#ifndef LAMO_IO_MOTIF_IO_H_
#define LAMO_IO_MOTIF_IO_H_

#include <string>
#include <vector>

#include "core/labeled_motif.h"
#include "motif/motif.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace lamo {

/// Writes mined motifs (pattern, frequency, uniqueness, occurrence list) as
/// a line-oriented text file:
///
///   # lamo motifs
///   motif <n> <frequency> <uniqueness>
///   edges <a>-<b> <a>-<b> ...
///   occ <p0> <p1> ...          (one line per occurrence, aligned order)
///   end
Status WriteMotifs(const std::vector<Motif>& motifs, const std::string& path);

/// Reads the format produced by WriteMotifs.
StatusOr<std::vector<Motif>> ReadMotifs(const std::string& path);

/// Writes labeled motifs; labels are stored as term names resolved against
/// the labeling ontology:
///
///   # lamo labeled motifs
///   labeled <n> <frequency> <uniqueness> <strength>
///   edges <a>-<b> ...
///   labels <pos> <term,term,...>   (omitted for "unknown" vertices)
///   occ <p0> <p1> ...
///   end
Status WriteLabeledMotifs(const std::vector<LabeledMotif>& motifs,
                          const Ontology& ontology, const std::string& path);

/// Reads the format produced by WriteLabeledMotifs, resolving term names
/// against `ontology`.
StatusOr<std::vector<LabeledMotif>> ReadLabeledMotifs(
    const std::string& path, const Ontology& ontology);

}  // namespace lamo

#endif  // LAMO_IO_MOTIF_IO_H_
