#include "io/obo.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/atomic_io.h"
#include "util/string_util.h"

namespace lamo {

Status WriteObo(const Ontology& ontology, const std::string& path) {
  std::ostringstream out;
  out << "format-version: 1.2\n";
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    out << "\n[Term]\n";
    out << "id: " << ontology.TermName(t) << "\n";
    const auto parents = ontology.Parents(t);
    const auto relations = ontology.ParentRelations(t);
    for (size_t i = 0; i < parents.size(); ++i) {
      if (relations[i] == RelationType::kIsA) {
        out << "is_a: " << ontology.TermName(parents[i]) << "\n";
      } else {
        out << "relationship: part_of " << ontology.TermName(parents[i])
            << "\n";
      }
    }
  }
  return WriteFileAtomic(path, out.str());
}

StatusOr<Ontology> ReadObo(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  struct RawTerm {
    std::string id;
    std::vector<std::pair<std::string, RelationType>> parents;
  };
  std::vector<RawTerm> raw_terms;
  bool in_term = false;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "[Term]") {
      raw_terms.emplace_back();
      in_term = true;
      continue;
    }
    if (trimmed[0] == '[') {
      in_term = false;  // [Typedef] etc.: skip
      continue;
    }
    if (!in_term) continue;
    RawTerm& term = raw_terms.back();
    if (StartsWith(trimmed, "id: ")) {
      term.id = std::string(Trim(trimmed.substr(4)));
    } else if (StartsWith(trimmed, "is_a: ")) {
      // Real GO appends "! name"; keep only the id token.
      std::string target(Trim(trimmed.substr(6)));
      const size_t bang = target.find(" !");
      if (bang != std::string::npos) target = target.substr(0, bang);
      term.parents.emplace_back(std::string(Trim(target)),
                                RelationType::kIsA);
    } else if (StartsWith(trimmed, "relationship: part_of ")) {
      std::string target(Trim(trimmed.substr(22)));
      const size_t bang = target.find(" !");
      if (bang != std::string::npos) target = target.substr(0, bang);
      term.parents.emplace_back(std::string(Trim(target)),
                                RelationType::kPartOf);
    }
    // Other tags (name:, namespace:, def:, ...) are ignored.
  }

  OntologyBuilder builder;
  std::map<std::string, TermId> ids;
  for (const RawTerm& term : raw_terms) {
    if (term.id.empty()) {
      return Status::Corruption(path + ": [Term] stanza without id");
    }
    if (ids.count(term.id) != 0) {
      return Status::Corruption(path + ": duplicate term id " + term.id);
    }
    ids[term.id] = builder.AddTerm(term.id);
  }
  for (const RawTerm& term : raw_terms) {
    for (const auto& [parent_name, relation] : term.parents) {
      auto it = ids.find(parent_name);
      if (it == ids.end()) {
        return Status::Corruption(path + ": unknown parent " + parent_name);
      }
      LAMO_RETURN_IF_ERROR(
          builder.AddRelation(ids[term.id], it->second, relation));
    }
  }
  return builder.Build();
}

}  // namespace lamo
