#ifndef LAMO_IO_GAF_H_
#define LAMO_IO_GAF_H_

#include <string>

#include "ontology/annotation.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace lamo {

/// Writes protein annotations as a GAF-flavoured TSV:
///
///   # lamo annotations
///   proteins <n>
///   <protein_id>\t<term_name>
Status WriteAnnotations(const AnnotationTable& annotations,
                        const Ontology& ontology, const std::string& path);

/// Reads the format produced by WriteAnnotations, resolving term names
/// against `ontology`. Unknown term names are a Corruption error.
StatusOr<AnnotationTable> ReadAnnotations(const std::string& path,
                                          const Ontology& ontology);

}  // namespace lamo

#endif  // LAMO_IO_GAF_H_
