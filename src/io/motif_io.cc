#include "io/motif_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "graph/canonical.h"
#include "util/atomic_io.h"
#include "util/string_util.h"

namespace lamo {
namespace {

void WriteEdges(std::ostream& out, const SmallGraph& pattern) {
  out << "edges";
  for (const auto& [a, b] : pattern.Edges()) {
    out << " " << a << "-" << b;
  }
  out << "\n";
}

Status ParseEdges(const std::string_view line, size_t n, SmallGraph* out) {
  *out = SmallGraph(n);
  std::istringstream fields{std::string(Trim(line.substr(5)))};
  std::string token;
  while (fields >> token) {
    const size_t dash = token.find('-');
    if (dash == std::string::npos) {
      return Status::Corruption("bad edge token: " + token);
    }
    uint64_t a = 0, b = 0;
    if (!ParseUint64(token.substr(0, dash), &a) ||
        !ParseUint64(token.substr(dash + 1), &b) || a >= n || b >= n ||
        a == b) {
      return Status::Corruption("bad edge token: " + token);
    }
    out->AddEdge(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  }
  return Status::OK();
}

Status ParseOccurrence(const std::string_view line, size_t n,
                       MotifOccurrence* occ) {
  // A bare "occ" line (no trailing space) is shorter than the prefix we
  // strip; substr past the end throws on string_view.
  if (line.size() < 4) return Status::Corruption("occurrence arity mismatch");
  std::istringstream fields{std::string(Trim(line.substr(4)))};
  uint64_t p = 0;
  occ->proteins.clear();
  while (fields >> p) {
    occ->proteins.push_back(static_cast<VertexId>(p));
  }
  if (occ->proteins.size() != n) {
    return Status::Corruption("occurrence arity mismatch");
  }
  return Status::OK();
}

}  // namespace

Status WriteMotifs(const std::vector<Motif>& motifs,
                   const std::string& path) {
  // Rendered in memory and replaced atomically: a crash mid-write must
  // never leave a torn motif file behind.
  std::ostringstream out;
  out << "# lamo motifs\n";
  for (const Motif& m : motifs) {
    out << "motif " << m.size() << " " << m.frequency << " " << m.uniqueness
        << "\n";
    WriteEdges(out, m.pattern);
    for (const MotifOccurrence& occ : m.occurrences) {
      out << "occ";
      for (VertexId p : occ.proteins) out << " " << p;
      out << "\n";
    }
    out << "end\n";
  }
  return WriteFileAtomic(path, out.str());
}

StatusOr<std::vector<Motif>> ReadMotifs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Motif> motifs;
  Motif current;
  bool in_motif = false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "motif ")) {
      if (in_motif) return Status::Corruption(path + ": nested motif");
      in_motif = true;
      current = Motif();
      std::istringstream fields{std::string(trimmed.substr(6))};
      size_t n = 0;
      if (!(fields >> n >> current.frequency >> current.uniqueness)) {
        return Status::Corruption(path + ": bad motif header");
      }
      // Validate before SmallGraph(n): its constructor CHECK-fails on
      // oversized n, and corrupt input must never abort the process.
      if (n < 2 || n > SmallGraph::kMaxVertices) {
        return Status::Corruption(path + ": motif size out of range");
      }
      current.pattern = SmallGraph(n);
    } else if (StartsWith(trimmed, "edges")) {
      if (!in_motif) return Status::Corruption(path + ": stray edges");
      LAMO_RETURN_IF_ERROR(ParseEdges(
          trimmed, current.pattern.num_vertices(), &current.pattern));
    } else if (StartsWith(trimmed, "occ")) {
      if (!in_motif) return Status::Corruption(path + ": stray occ");
      MotifOccurrence occ;
      LAMO_RETURN_IF_ERROR(ParseOccurrence(
          trimmed, current.pattern.num_vertices(), &occ));
      current.occurrences.push_back(std::move(occ));
    } else if (trimmed == "end") {
      if (!in_motif) return Status::Corruption(path + ": stray end");
      current.code = CanonicalCode(current.pattern);
      motifs.push_back(std::move(current));
      in_motif = false;
    } else {
      return Status::Corruption(path + ": unrecognized line: " +
                                std::string(trimmed));
    }
  }
  if (in_motif) return Status::Corruption(path + ": unterminated motif");
  return motifs;
}

Status WriteLabeledMotifs(const std::vector<LabeledMotif>& motifs,
                          const Ontology& ontology, const std::string& path) {
  std::ostringstream out;
  out << "# lamo labeled motifs\n";
  for (const LabeledMotif& m : motifs) {
    out << "labeled " << m.size() << " " << m.frequency << " "
        << m.uniqueness << " " << m.strength << "\n";
    WriteEdges(out, m.pattern);
    for (size_t pos = 0; pos < m.scheme.size(); ++pos) {
      if (m.scheme[pos].empty()) continue;
      out << "labels " << pos << " ";
      for (size_t i = 0; i < m.scheme[pos].size(); ++i) {
        if (i > 0) out << ",";
        out << ontology.TermName(m.scheme[pos][i]);
      }
      out << "\n";
    }
    for (const MotifOccurrence& occ : m.occurrences) {
      out << "occ";
      for (VertexId p : occ.proteins) out << " " << p;
      out << "\n";
    }
    out << "end\n";
  }
  return WriteFileAtomic(path, out.str());
}

StatusOr<std::vector<LabeledMotif>> ReadLabeledMotifs(
    const std::string& path, const Ontology& ontology) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::map<std::string, TermId> ids;
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    ids[ontology.TermName(t)] = t;
  }

  std::vector<LabeledMotif> motifs;
  LabeledMotif current;
  bool in_motif = false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "labeled ")) {
      if (in_motif) return Status::Corruption(path + ": nested motif");
      in_motif = true;
      current = LabeledMotif();
      std::istringstream fields{std::string(trimmed.substr(8))};
      size_t n = 0;
      if (!(fields >> n >> current.frequency >> current.uniqueness >>
            current.strength)) {
        return Status::Corruption(path + ": bad labeled header");
      }
      if (n < 2 || n > SmallGraph::kMaxVertices) {
        return Status::Corruption(path + ": motif size out of range");
      }
      current.pattern = SmallGraph(n);
      current.scheme.assign(n, {});
    } else if (StartsWith(trimmed, "edges")) {
      if (!in_motif) return Status::Corruption(path + ": stray edges");
      LAMO_RETURN_IF_ERROR(ParseEdges(
          trimmed, current.pattern.num_vertices(), &current.pattern));
    } else if (StartsWith(trimmed, "labels ")) {
      if (!in_motif) return Status::Corruption(path + ": stray labels");
      std::istringstream fields{std::string(trimmed.substr(7))};
      size_t pos = 0;
      std::string terms;
      if (!(fields >> pos >> terms) || pos >= current.scheme.size()) {
        return Status::Corruption(path + ": bad labels line");
      }
      for (const std::string& name : Split(terms, ',')) {
        auto it = ids.find(name);
        if (it == ids.end()) {
          return Status::Corruption(path + ": unknown term " + name);
        }
        current.scheme[pos].push_back(it->second);
      }
    } else if (StartsWith(trimmed, "occ")) {
      if (!in_motif) return Status::Corruption(path + ": stray occ");
      MotifOccurrence occ;
      LAMO_RETURN_IF_ERROR(ParseOccurrence(
          trimmed, current.pattern.num_vertices(), &occ));
      current.occurrences.push_back(std::move(occ));
    } else if (trimmed == "end") {
      if (!in_motif) return Status::Corruption(path + ": stray end");
      current.code = CanonicalCode(current.pattern);
      motifs.push_back(std::move(current));
      in_motif = false;
    } else {
      return Status::Corruption(path + ": unrecognized line: " +
                                std::string(trimmed));
    }
  }
  if (in_motif) return Status::Corruption(path + ": unterminated motif");
  return motifs;
}

}  // namespace lamo
