#include "io/edge_list.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_io.h"
#include "util/string_util.h"

namespace lamo {

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ostringstream out;
  out << "# lamo edge list\n";
  out << "vertices " << graph.num_vertices() << "\n";
  for (const auto& [a, b] : graph.Edges()) {
    out << a << " " << b << "\n";
  }
  return WriteFileAtomic(path, out.str());
}

StatusOr<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  size_t num_vertices = 0;
  bool have_header = false;
  std::vector<std::pair<VertexId, VertexId>> edges;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!have_header) {
      if (!StartsWith(trimmed, "vertices ")) {
        return Status::Corruption(path + ":" + std::to_string(line_number) +
                                  ": expected 'vertices <n>' header");
      }
      uint64_t n = 0;
      if (!ParseUint64(Trim(trimmed.substr(9)), &n)) {
        return Status::Corruption(path + ": bad vertex count");
      }
      // Sanity cap: the count drives an up-front allocation, so a corrupt
      // header must not be able to demand gigabytes before any edge is read.
      if (n > 10'000'000) {
        return Status::Corruption(path + ": implausible vertex count " +
                                  std::to_string(n));
      }
      num_vertices = static_cast<size_t>(n);
      have_header = true;
      continue;
    }
    std::istringstream fields{std::string(trimmed)};
    uint64_t a = 0, b = 0;
    if (!(fields >> a >> b)) {
      return Status::Corruption(path + ":" + std::to_string(line_number) +
                                ": expected '<a> <b>'");
    }
    if (a >= num_vertices || b >= num_vertices) {
      return Status::Corruption(path + ":" + std::to_string(line_number) +
                                ": endpoint out of range");
    }
    edges.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
  }
  if (!have_header) return Status::Corruption(path + ": missing header");
  GraphBuilder builder(num_vertices);
  for (const auto& [a, b] : edges) {
    LAMO_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  return builder.Build();
}

}  // namespace lamo
