#ifndef LAMO_IO_OBO_H_
#define LAMO_IO_OBO_H_

#include <string>

#include "ontology/ontology.h"
#include "util/status.h"

namespace lamo {

/// Writes an ontology in a minimal OBO-flavoured format compatible with the
/// stanzas the real GO flat files use:
///
///   format-version: 1.2
///
///   [Term]
///   id: T0003
///   is_a: T0001
///   relationship: part_of T0002
Status WriteObo(const Ontology& ontology, const std::string& path);

/// Reads the subset of OBO produced by WriteObo (and the corresponding
/// subset of real GO files: [Term] stanzas with id / is_a / relationship
/// part_of tags; other tags are ignored). Terms are created in file order.
StatusOr<Ontology> ReadObo(const std::string& path);

}  // namespace lamo

#endif  // LAMO_IO_OBO_H_
